#include "core/replication.hpp"

#include <bit>

namespace rtsp {

ReplicationMatrix::ReplicationMatrix(std::size_t servers, std::size_t objects,
                                     Store store)
    : servers_(servers), objects_(objects) {
  bool sparse = store == Store::kSparse;
  if (store == Store::kAuto && servers > 0) {
    sparse = objects > kDenseBitLimit / servers;
  }
  if (sparse) {
    sparse_.emplace(servers, objects);
  } else {
    words_per_row_ = (objects + 63) / 64;
    words_.assign(servers * words_per_row_, 0);
  }
}

ReplicationMatrix ReplicationMatrix::from_pairs(
    std::size_t servers, std::size_t objects,
    std::initializer_list<std::pair<ServerId, ObjectId>> pairs) {
  ReplicationMatrix m(servers, objects);
  for (const auto& [i, k] : pairs) m.set(i, k);
  return m;
}

std::vector<ObjectId> ReplicationMatrix::objects_on(ServerId i) const {
  std::vector<ObjectId> out;
  if (sparse_) out.reserve(sparse_->count_on(i));
  for_each_object(i, [&](ObjectId k) { out.push_back(k); });
  return out;
}

std::vector<ServerId> ReplicationMatrix::replicators_of(ObjectId k) const {
  std::vector<ServerId> out;
  if (sparse_) out.reserve(sparse_->replica_count(k));
  for_each_replicator(k, [&](ServerId i) { out.push_back(i); });
  return out;
}

std::size_t ReplicationMatrix::replica_count(ObjectId k) const {
  if (sparse_) return sparse_->replica_count(k);
  RTSP_REQUIRE(k < objects_);
  std::size_t n = 0;
  for (ServerId i = 0; i < servers_; ++i) n += test(i, k) ? 1 : 0;
  return n;
}

std::size_t ReplicationMatrix::count_on(ServerId i) const {
  if (sparse_) return sparse_->count_on(i);
  RTSP_REQUIRE(i < servers_);
  std::size_t n = 0;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    n += static_cast<std::size_t>(std::popcount(words_[i * words_per_row_ + w]));
  }
  return n;
}

std::size_t ReplicationMatrix::total_replicas() const {
  if (sparse_) return sparse_->total_replicas();
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

Size ReplicationMatrix::used_storage(ServerId i, const ObjectCatalog& objects) const {
  RTSP_REQUIRE(objects.count() == objects_);
  Size used = 0;
  for_each_object(i, [&](ObjectId k) { used += objects.size_of(k); });
  return used;
}

std::size_t ReplicationMatrix::overlap(const ReplicationMatrix& other) const {
  RTSP_REQUIRE(servers_ == other.servers_ && objects_ == other.objects_);
  if (is_dense() && other.is_dense()) {
    std::size_t n = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      n += static_cast<std::size_t>(std::popcount(words_[w] & other.words_[w]));
    }
    return n;
  }
  if (is_sparse() && other.is_sparse()) return sparse_->overlap(*other.sparse_);
  // Mixed: walk the sparse side's replica sets, probe the dense side.
  const ReplicationMatrix& sparse = is_sparse() ? *this : other;
  const ReplicationMatrix& dense = is_sparse() ? other : *this;
  std::size_t n = 0;
  for (ObjectId k = 0; k < objects_; ++k) {
    sparse.for_each_replicator(k, [&](ServerId i) {
      if (dense.test(i, k)) ++n;
    });
  }
  return n;
}

bool ReplicationMatrix::operator==(const ReplicationMatrix& other) const {
  if (servers_ != other.servers_ || objects_ != other.objects_) return false;
  if (is_dense() && other.is_dense()) return words_ == other.words_;
  if (is_sparse() && other.is_sparse()) return *sparse_ == *other.sparse_;
  if (total_replicas() != other.total_replicas()) return false;
  return overlap(other) == total_replicas();
}

}  // namespace rtsp
