// DaemonCore: the crash-safe continuous rebalancing engine behind
// `rtsp serve`. It owns the live placement, a bounded admission queue of
// target placements (epochs), and — when given a state directory — a
// write-ahead log + periodic checkpoint pair that make every externally
// visible effect recoverable.
//
// Determinism contract (the chaos-harness invariant): processing epoch
// (seq, attempt) is a pure function of (placement-before, target, daemon
// seed) — the planner/executor stream is keyed mix64(mix64(seed, seq),
// attempt). Admission order is serialized through the WAL. Hence redoing
// the WAL against the last checkpoint reproduces the uninterrupted run
// bit-identically: same placements, same virtual clock, same counters.
//
// Durability protocol (docs/daemon.md has the full walkthrough):
//   * kAdmit is fsync'd before the submitter is acknowledged and before
//     the queue mutates; its coalesce decision (`replaces`) is recorded so
//     replay re-applies rather than re-decides it.
//   * kBegin is fsync'd before processing starts, so a crash mid-epoch
//     replays as "re-process this epoch" (pure, so bit-identical).
//   * kCommit carries the post-placement CRC (replay divergence check) and
//     the re-admission decision for a partially-converged epoch — folding
//     the requeue into the commit record makes commit+requeue atomic.
//   * A checkpoint snapshots everything under generation g+1, then the WAL
//     is recreated under g+1; a WAL one generation behind its checkpoint
//     is stale (already folded in) and is discarded, never replayed twice.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>

#include "core/schedule.hpp"
#include "core/system.hpp"
#include "daemon/epoch_queue.hpp"
#include "exec/retry_policy.hpp"
#include "io/checkpoint_io.hpp"

namespace rtsp::daemon {

struct DaemonOptions {
  /// Directory for checkpoint + WAL; empty runs fully in memory (tests,
  /// dry runs) with no durability.
  std::string state_dir;
  std::uint64_t seed = 1;

  /// Planner: a registry pipeline spec, or the anytime portfolio when
  /// `portfolio` is set (plan_budget_ticks then bounds the race).
  std::string algo = "GOLCF+H1+H2+OP1";
  bool portfolio = false;
  std::uint64_t plan_budget_ticks = 200000;

  /// Per-epoch executor budget in virtual ticks; 0 = run to convergence.
  /// A budgeted epoch that stops early is checkpointed as-is and
  /// re-admitted with backoff; after `max_attempts` rounds the next round
  /// runs unbudgeted (graceful degradation, guarantees convergence).
  Tick epoch_budget_ticks = 0;
  std::uint32_t max_attempts = 4;

  std::size_t queue_depth = 8;
  QueuePolicy policy = QueuePolicy::kCoalesce;

  /// Commits between checkpoints (a checkpoint also rotates the WAL).
  std::uint64_t checkpoint_every = 4;
  /// fsync WAL appends and checkpoints (off only for tests/benches).
  bool fsync = true;

  /// Executor knobs, shared across epochs.
  exec::RetryPolicy exec_retry;
  exec::FaultSpec faults;
  std::size_t max_replans = 16;
  std::size_t degrade_after = 2;

  /// Virtual-tick backoff between re-admissions of a partial epoch,
  /// keyed deterministically per (seq, attempt).
  exec::RetryPolicy readmit_backoff{.max_retries = 0,
                                    .base_backoff = 256,
                                    .multiplier = 2.0,
                                    .max_backoff = 8192,
                                    .jitter = 0.5};

  /// Chaos/test hook: accumulate every epoch's effective actions into one
  /// cumulative schedule (effective_log()).
  bool record_effective = false;
};

/// Unrecoverable daemon state: corrupt checkpoint, incompatible WAL,
/// replay divergence. `rtsp serve` maps this to exit code 4.
class DaemonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct AdmitResult {
  enum class Status {
    kAdmitted,    ///< queued under `seq`
    kCoalesced,   ///< queued under `seq`, replacing pending `replaced`
    kRejected,    ///< backpressure; retry after `retry_after` ticks
    kInfeasible,  ///< target is not storage-feasible — never admitted
    kMismatched,  ///< wrong dimensions for this daemon's model
  };
  Status status = Status::kAdmitted;
  std::uint64_t seq = 0;
  std::uint64_t replaced = 0;
  Tick retry_after = 0;
  std::string error;

  bool accepted() const {
    return status == Status::kAdmitted || status == Status::kCoalesced;
  }
};

const char* to_string(AdmitResult::Status s);

/// What recovery found and did (logged by `rtsp serve --recover`).
struct RecoverReport {
  bool had_checkpoint = false;
  bool wal_stale = false;          ///< WAL was one generation behind: discarded
  std::uint64_t generation = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t reprocessed = 0;   ///< kBegin records redone (incl. torn epoch)
  std::uint64_t completed_begin = 0;  ///< trailing BEGIN finished during recovery
  std::uint64_t rolled_back_bytes = 0;  ///< torn WAL tail truncated on disk
};

class DaemonCore {
 public:
  /// Fresh daemon over (model, x_start). With a state_dir, writes the
  /// initial WAL (generation 0); refuses a state_dir that already holds a
  /// checkpoint or WAL (use the recovery constructor for that).
  DaemonCore(const SystemModel& model, const ReplicationMatrix& x_start,
             const DaemonOptions& options);

  /// Recovery: restores the checkpoint (if any), replays the WAL, rolls a
  /// torn tail back on disk, finishes an interrupted epoch. Throws
  /// DaemonError on corruption, seed/model mismatch or replay divergence.
  /// `x_start` seeds the state only when no checkpoint exists yet.
  DaemonCore(const SystemModel& model, const ReplicationMatrix& x_start,
             const DaemonOptions& options, RecoverReport& report);

  ~DaemonCore();

  DaemonCore(const DaemonCore&) = delete;
  DaemonCore& operator=(const DaemonCore&) = delete;

  /// Admits `target` (thread-safe; callable from HTTP handler threads
  /// while the serve loop is inside step()). The kAdmit record is durable
  /// before this returns.
  AdmitResult admit(const ReplicationMatrix& target);

  /// Processes one epoch: pops the lowest ready seq (jumping the virtual
  /// clock forward when every pending epoch is backing off), plans,
  /// executes under the per-epoch budget, commits. Returns false when the
  /// queue is empty. Not re-entrant — one stepper thread only.
  bool step();

  /// step() until the queue drains.
  void run_until_idle();

  /// Writes a checkpoint now and rotates the WAL.
  void checkpoint_now();

  /// Final checkpoint (when durable) and WAL close. Called by the
  /// destructor; explicit for the drain path.
  void shutdown();

  /// Simulated power loss: drops the WAL handle without checkpointing or
  /// flushing, so the destructor leaves the on-disk state exactly as the
  /// last durable record left it. Chaos-harness only — a real daemon dies
  /// via _Exit/SIGKILL, which has the same effect.
  void abandon();

  bool idle() const;
  Tick clock() const;
  std::uint64_t last_seq() const;
  DaemonCounters counters() const;

  /// Current placement fingerprint (CRC of the canonical pair encoding).
  std::uint64_t placement_crc() const;

  /// The live placement. Only safe when no step() is in flight.
  const ReplicationMatrix& placement() const { return x_cur_; }

  const SystemModel& model() const { return model_; }

  /// Cumulative effective actions (options.record_effective only).
  const Schedule& effective_log() const { return effective_log_; }

  /// One coherent status sample for /daemon/status.
  struct Status {
    Tick clock = 0;
    std::size_t queue_depth = 0;
    std::size_t queue_capacity = 0;
    bool idle = false;
    std::uint64_t last_seq = 0;
    std::uint64_t generation = 0;
    std::uint64_t placement_crc = 0;
    DaemonCounters counters;
  };
  Status status() const;

  /// Chaos hook, called at the named durability points ("admit", "begin",
  /// "commit", "checkpoint") right after the corresponding bytes are
  /// durable. Throwing from it simulates a crash at exactly that instant.
  std::function<void(const char*)> crash_hook;

  /// Fingerprint of (capacities, sizes) — ties a checkpoint to its model.
  static std::uint64_t model_fingerprint(const SystemModel& model);

 private:
  struct Outcome;  // result of processing one epoch (pure)

  void hook(const char* point);
  std::uint64_t epoch_seed(std::uint64_t seq, std::uint32_t attempt) const;
  Outcome process_epoch(const PendingEpoch& e) const;
  void apply_commit_locked(const PendingEpoch& e, const Outcome& o,
                           bool during_replay);
  WalRecord commit_record_locked(const PendingEpoch& e, const Outcome& o) const;
  void checkpoint_locked();
  void maybe_checkpoint_locked();
  CheckpointDoc snapshot_locked() const;
  void recover(const ReplicationMatrix& x_start, RecoverReport& report);
  std::string checkpoint_path() const;
  std::string wal_path() const;

  const SystemModel& model_;
  DaemonOptions options_;
  mutable std::mutex mutex_;

  ReplicationMatrix x_cur_;
  std::uint64_t x_crc_ = 0;
  Tick clock_ = 0;
  std::uint64_t last_seq_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t commits_since_checkpoint_ = 0;
  EpochQueue queue_;
  DaemonCounters counters_;
  WalWriter wal_;
  bool durable_ = false;
  Schedule effective_log_;
};

/// CRC-64-ish fingerprint of a canonical placement (two chained CRC32
/// passes) — what kCommit records and /daemon/status expose.
std::uint64_t placement_fingerprint(const ReplicationMatrix& x);

}  // namespace rtsp::daemon
