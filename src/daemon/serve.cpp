#include "daemon/serve.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>

#include "io/epoch_io.hpp"
#include "io/instance_binary_io.hpp"
#include "obs/introspect.hpp"
#include "obs/obs.hpp"
#include "support/json.hpp"

namespace rtsp::daemon {

namespace {

// Async-signal-safe lifecycle flags: handlers only store into these; the
// serve loop polls them. A second SIGINT must force-quit even when the
// loop is wedged, so that path runs in the handler itself — _Exit is
// async-signal-safe.
volatile std::sig_atomic_t g_drain_signal = 0;
volatile std::sig_atomic_t g_sigint_seen = 0;

extern "C" void serve_handle_sigterm(int) { g_drain_signal = 1; }

extern "C" void serve_handle_sigint(int) {
  if (g_sigint_seen != 0) std::_Exit(130);
  g_sigint_seen = 1;
  g_drain_signal = 1;
}

/// Installs the serve handlers for the scope of one run_serve call and
/// restores whatever was there before (the obs::Session handlers).
class SignalScope {
 public:
  SignalScope() {
    g_drain_signal = 0;
    g_sigint_seen = 0;
    old_term_ = std::signal(SIGTERM, serve_handle_sigterm);
    old_int_ = std::signal(SIGINT, serve_handle_sigint);
  }
  ~SignalScope() {
    std::signal(SIGTERM, old_term_);
    std::signal(SIGINT, old_int_);
  }

 private:
  void (*old_term_)(int);
  void (*old_int_)(int);
};

std::string status_json(const DaemonCore::Status& s) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("clock").value(static_cast<std::int64_t>(s.clock));
  w.key("queue_depth").value(static_cast<std::int64_t>(s.queue_depth));
  w.key("queue_capacity").value(static_cast<std::int64_t>(s.queue_capacity));
  w.key("idle").value(s.idle);
  w.key("last_seq").value(static_cast<std::int64_t>(s.last_seq));
  w.key("generation").value(static_cast<std::int64_t>(s.generation));
  w.key("placement_crc").value(std::to_string(s.placement_crc));
  w.key("admitted").value(static_cast<std::int64_t>(s.counters.admitted));
  w.key("converged").value(static_cast<std::int64_t>(s.counters.converged));
  w.key("partial_rounds").value(static_cast<std::int64_t>(s.counters.partial_rounds));
  w.key("readmissions").value(static_cast<std::int64_t>(s.counters.readmissions));
  w.key("coalesced").value(static_cast<std::int64_t>(s.counters.coalesced));
  w.key("rejected").value(static_cast<std::int64_t>(s.counters.rejected));
  w.key("infeasible").value(static_cast<std::int64_t>(s.counters.infeasible));
  w.key("checkpoints").value(static_cast<std::int64_t>(s.counters.checkpoints));
  w.key("recoveries").value(static_cast<std::int64_t>(s.counters.recoveries));
  w.key("actions_applied").value(static_cast<std::int64_t>(s.counters.actions_applied));
  w.key("cost_paid").value(static_cast<std::int64_t>(s.counters.cost_paid));
  w.end_object();
  return os.str();
}

std::string admit_json(const AdmitResult& r) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("status").value(to_string(r.status));
  w.key("seq").value(static_cast<std::int64_t>(r.seq));
  if (r.replaced != 0) w.key("replaced").value(static_cast<std::int64_t>(r.replaced));
  if (r.retry_after != 0) {
    w.key("retry_after_ticks").value(static_cast<std::int64_t>(r.retry_after));
  }
  if (!r.error.empty()) w.key("error").value(r.error);
  w.end_object();
  return os.str();
}

/// The daemon control plane, mounted as the introspect server's custom
/// route. Runs on handler-pool threads: everything it touches is
/// DaemonCore's thread-safe surface plus one atomic drain flag.
obs::HttpRouteHandler make_route(DaemonCore& core, std::atomic<bool>& drain) {
  return [&core, &drain](const obs::HttpRouteRequest& req,
                         obs::HttpRouteReply& reply) {
    if (req.target == "/daemon/status" && req.method == "GET") {
      reply.body = status_json(core.status());
      return true;
    }
    if (req.target == "/drain" && req.method == "POST") {
      drain.store(true, std::memory_order_relaxed);
      reply.body = "{\"status\":\"draining\"}";
      return true;
    }
    if (req.target == "/epochs" && req.method == "POST") {
      ReplicationMatrix target;
      try {
        const JsonValue doc = parse_json(req.body);
        target = placement_from_pairs(doc.at("place"), core.model().num_servers(),
                                      core.model().num_objects());
      } catch (const std::exception& e) {
        reply.status = 400;
        reply.body =
            "{\"error\":\"" + JsonWriter::escape(e.what()) + "\"}";
        return true;
      }
      const AdmitResult r = core.admit(target);
      switch (r.status) {
        case AdmitResult::Status::kAdmitted:
        case AdmitResult::Status::kCoalesced:
          reply.status = 200;
          break;
        case AdmitResult::Status::kRejected:
          reply.status = 429;
          reply.retry_after = std::to_string(r.retry_after);
          break;
        case AdmitResult::Status::kInfeasible:
          reply.status = 422;
          break;
        case AdmitResult::Status::kMismatched:
          reply.status = 400;
          break;
      }
      reply.body = admit_json(r);
      return true;
    }
    return false;
  };
}

}  // namespace

int run_serve(const ServeOptions& options, std::ostream& out, std::ostream& err) {
  const Instance instance = read_instance_any(options.instance_path);

  std::unique_ptr<DaemonCore> core;
  RecoverReport recovery;
  try {
    if (options.recover) {
      core = std::make_unique<DaemonCore>(instance.model, instance.x_old,
                                          options.core, recovery);
    } else {
      core = std::make_unique<DaemonCore>(instance.model, instance.x_old,
                                          options.core);
    }
  } catch (const DaemonError& e) {
    err << "serve: " << e.what() << '\n';
    return kServeExitCorrupt;
  }
  if (options.recover) {
    out << "recovered: generation " << recovery.generation << ", "
        << recovery.records_replayed << " wal records ("
        << recovery.reprocessed << " reprocessed, " << recovery.completed_begin
        << " commits completed)";
    if (recovery.wal_stale) out << ", stale wal discarded";
    if (recovery.rolled_back_bytes > 0) {
      out << ", torn tail rolled back (" << recovery.rolled_back_bytes
          << " bytes)";
    }
    out << '\n';
  }

  SignalScope signals;
  std::atomic<bool> drain_requested{false};
  const auto draining = [&] {
    return g_drain_signal != 0 || drain_requested.load(std::memory_order_relaxed);
  };

  std::unique_ptr<obs::IntrospectServer> server;
  if (options.listen_port >= 0) {
    obs::IntrospectOptions io;
    io.port = static_cast<std::uint16_t>(options.listen_port);
    io.route = make_route(*core, drain_requested);
    server = std::make_unique<obs::IntrospectServer>(io);
    out << "serving on 127.0.0.1:" << server->port() << '\n';
    out.flush();
    if (!options.port_file.empty()) {
      std::ofstream pf(options.port_file);
      pf << server->port() << '\n';
    }
  }

  const auto finish = [&](int code) {
    try {
      core->shutdown();
    } catch (const std::exception& e) {
      err << "serve: shutdown: " << e.what() << '\n';
      return kServeExitCorrupt;
    }
    if (server) server->stop();
    if (!options.final_out.empty()) {
      write_placement_file(options.final_out, core->placement());
    }
    const DaemonCore::Status s = core->status();
    out << "daemon exit: clock " << s.clock << ", " << s.counters.admitted
        << " admitted, " << s.counters.converged << " converged, "
        << s.counters.readmissions << " readmissions, cost "
        << s.counters.cost_paid << ", placement crc " << s.placement_crc
        << '\n';
    return code;
  };

  try {
    // File feed: admit every epoch in order, stepping inline to relieve
    // backpressure when the queue fills.
    if (!options.epochs_path.empty()) {
      const EpochStreamDoc doc = read_epoch_stream_file(options.epochs_path);
      if (doc.servers != instance.model.num_servers() ||
          doc.objects != instance.model.num_objects()) {
        err << "serve: epoch stream is " << doc.servers << "x" << doc.objects
            << " but the instance is " << instance.model.num_servers() << "x"
            << instance.model.num_objects() << '\n';
        return finish(1);
      }
      for (const ReplicationMatrix& target : doc.epochs) {
        if (draining()) break;
        while (!draining()) {
          const AdmitResult r = core->admit(target);
          if (r.status != AdmitResult::Status::kRejected) {
            if (!r.accepted()) {
              err << "serve: epoch refused: " << r.error << '\n';
            }
            break;
          }
          core->step();  // make room, then retry the admission
        }
      }
    }

    // Main loop: process until drained, or (listen mode) idle long enough.
    using Clock = std::chrono::steady_clock;
    Clock::time_point idle_since = Clock::now();
    bool was_idle = false;
    while (!draining()) {
      if (core->step()) {
        was_idle = false;
        continue;
      }
      if (!server) break;  // pure file mode: queue drained, we are done
      if (!was_idle) {
        was_idle = true;
        idle_since = Clock::now();
      }
      if (options.idle_exit_ms >= 0 &&
          Clock::now() - idle_since >=
              std::chrono::milliseconds(options.idle_exit_ms)) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  } catch (const DaemonError& e) {
    err << "serve: " << e.what() << '\n';
    if (server) server->stop();
    return kServeExitCorrupt;
  }

  if (draining()) {
    const int code = finish(kServeExitDrained);
    out << "drained (signal or /drain)\n";
    return code;
  }
  return finish(kServeExitOk);
}

}  // namespace rtsp::daemon
