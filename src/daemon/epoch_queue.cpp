#include "daemon/epoch_queue.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace rtsp::daemon {

const char* to_string(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::kReject: return "reject";
    case QueuePolicy::kCoalesce: return "coalesce";
  }
  return "?";
}

EpochQueue::EpochQueue(std::size_t max_depth) : max_depth_(max_depth) {
  RTSP_REQUIRE(max_depth_ > 0);
}

void EpochQueue::push(PendingEpoch e) {
  const auto at = std::lower_bound(
      entries_.begin(), entries_.end(), e.seq,
      [](const PendingEpoch& p, std::uint64_t seq) { return p.seq < seq; });
  RTSP_REQUIRE(at == entries_.end() || at->seq != e.seq);
  entries_.insert(at, std::move(e));
}

std::uint64_t EpochQueue::newest_seq() const {
  RTSP_REQUIRE(!entries_.empty());
  return entries_.back().seq;
}

void EpochQueue::replace(std::uint64_t victim, PendingEpoch e) {
  const auto at = std::find_if(
      entries_.begin(), entries_.end(),
      [victim](const PendingEpoch& p) { return p.seq == victim; });
  RTSP_REQUIRE(at != entries_.end());
  entries_.erase(at);
  push(std::move(e));
}

const PendingEpoch* EpochQueue::next_ready(Tick now) const {
  for (const PendingEpoch& e : entries_) {
    if (e.not_before <= now) return &e;
  }
  return nullptr;
}

Tick EpochQueue::earliest_not_before() const {
  RTSP_REQUIRE(!entries_.empty());
  Tick earliest = std::numeric_limits<Tick>::max();
  for (const PendingEpoch& e : entries_) {
    earliest = std::min(earliest, e.not_before);
  }
  return earliest;
}

PendingEpoch EpochQueue::pop(std::uint64_t seq, std::uint32_t attempt) {
  const auto at = std::find_if(entries_.begin(), entries_.end(),
                               [seq](const PendingEpoch& p) { return p.seq == seq; });
  RTSP_REQUIRE(at != entries_.end());
  RTSP_REQUIRE(at->attempt == attempt);
  PendingEpoch e = std::move(*at);
  entries_.erase(at);
  return e;
}

}  // namespace rtsp::daemon
