#include "daemon/daemon.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "core/feasibility.hpp"
#include "core/validator.hpp"
#include "exec/executor.hpp"
#include "heuristics/registry.hpp"
#include "io/epoch_io.hpp"
#include "obs/obs.hpp"
#include "portfolio/portfolio.hpp"
#include "support/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace rtsp::daemon {

namespace {

bool file_exists(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
#else
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
#endif
}

void ensure_directory(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      throw DaemonError("state dir '" + path + "' exists and is not a directory");
    }
    return;
  }
  if (::mkdir(path.c_str(), 0777) != 0) {
    throw DaemonError("cannot create state dir '" + path + "'");
  }
#else
  (void)path;
#endif
}

void append_u64(std::vector<unsigned char>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

/// Two chained CRC32 passes over `buf`, packed into one u64.
std::uint64_t fingerprint64(const std::vector<unsigned char>& buf) {
  const std::uint32_t lo = crc32_ieee(buf.data(), buf.size());
  const std::uint32_t hi = crc32_ieee(buf.data(), buf.size(), lo ^ 0x9e3779b9u);
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

void validate_options(const DaemonOptions& o) {
  if (o.queue_depth == 0) throw std::invalid_argument("daemon: queue_depth must be > 0");
  if (o.checkpoint_every == 0) {
    throw std::invalid_argument("daemon: checkpoint_every must be > 0");
  }
  if (o.max_attempts == 0) throw std::invalid_argument("daemon: max_attempts must be > 0");
  if (o.epoch_budget_ticks < 0) {
    throw std::invalid_argument("daemon: epoch_budget_ticks must be >= 0");
  }
  exec::validate_policy(o.exec_retry);
  exec::validate_policy(o.readmit_backoff);
  make_pipeline(o.algo);  // throws std::invalid_argument on a bad spec
}

}  // namespace

const char* to_string(AdmitResult::Status s) {
  switch (s) {
    case AdmitResult::Status::kAdmitted: return "admitted";
    case AdmitResult::Status::kCoalesced: return "coalesced";
    case AdmitResult::Status::kRejected: return "rejected";
    case AdmitResult::Status::kInfeasible: return "infeasible";
    case AdmitResult::Status::kMismatched: return "mismatched";
  }
  return "?";
}

std::uint64_t placement_fingerprint(const ReplicationMatrix& x) {
  std::vector<unsigned char> buf;
  buf.reserve(16 + x.total_replicas() * 8);
  append_u64(buf, x.num_servers());
  append_u64(buf, x.num_objects());
  for (const auto& [s, k] : placement_pairs(x)) {
    append_u64(buf, (static_cast<std::uint64_t>(s) << 32) | k);
  }
  return fingerprint64(buf);
}

std::uint64_t DaemonCore::model_fingerprint(const SystemModel& model) {
  std::vector<unsigned char> buf;
  append_u64(buf, model.num_servers());
  append_u64(buf, model.num_objects());
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    append_u64(buf, static_cast<std::uint64_t>(model.capacity(i)));
  }
  for (ObjectId k = 0; k < model.num_objects(); ++k) {
    append_u64(buf, static_cast<std::uint64_t>(model.object_size(k)));
  }
  return fingerprint64(buf);
}

/// Result of processing one epoch — a pure function of (placement-before,
/// target, seq, attempt, daemon seed), which is what makes WAL redo exact.
struct DaemonCore::Outcome {
  bool converged = false;
  ReplicationMatrix x_after;
  Tick ticks = 0;        ///< virtual time the epoch occupied
  Cost cost = 0;         ///< executor actual_cost
  std::uint64_t actions = 0;
  Schedule effective;
};

DaemonCore::DaemonCore(const SystemModel& model, const ReplicationMatrix& x_start,
                       const DaemonOptions& options)
    : model_(model),
      options_(options),
      x_cur_(x_start),
      queue_(options.queue_depth),
      durable_(!options.state_dir.empty()) {
  validate_options(options_);
  RTSP_REQUIRE(x_start.num_servers() == model.num_servers() &&
               x_start.num_objects() == model.num_objects());
  if (!storage_feasible(model_, x_cur_)) {
    throw std::invalid_argument("daemon: starting placement is not storage-feasible");
  }
  x_crc_ = placement_fingerprint(x_cur_);
  if (durable_) {
    ensure_directory(options_.state_dir);
    if (file_exists(checkpoint_path()) || file_exists(wal_path())) {
      throw DaemonError("state dir '" + options_.state_dir +
                        "' already holds daemon state; use --recover");
    }
    wal_.create(wal_path(), generation_, options_.fsync);
  }
}

DaemonCore::DaemonCore(const SystemModel& model, const ReplicationMatrix& x_start,
                       const DaemonOptions& options, RecoverReport& report)
    : model_(model),
      options_(options),
      x_cur_(x_start),
      queue_(options.queue_depth),
      durable_(!options.state_dir.empty()) {
  validate_options(options_);
  RTSP_REQUIRE(x_start.num_servers() == model.num_servers() &&
               x_start.num_objects() == model.num_objects());
  if (!durable_) throw DaemonError("recovery requires a state dir");
  if (!storage_feasible(model_, x_cur_)) {
    throw std::invalid_argument("daemon: starting placement is not storage-feasible");
  }
  x_crc_ = placement_fingerprint(x_cur_);
  ensure_directory(options_.state_dir);
  recover(x_start, report);
}

DaemonCore::~DaemonCore() {
  try {
    shutdown();
  } catch (...) {
    // Destructor must not throw; an explicit shutdown() surfaces errors.
  }
}

std::string DaemonCore::checkpoint_path() const {
  return options_.state_dir + "/checkpoint";
}

std::string DaemonCore::wal_path() const { return options_.state_dir + "/wal.log"; }

void DaemonCore::hook(const char* point) {
  if (crash_hook) crash_hook(point);
}

std::uint64_t DaemonCore::epoch_seed(std::uint64_t seq, std::uint32_t attempt) const {
  return mix64(mix64(options_.seed, seq), attempt);
}

AdmitResult DaemonCore::admit(const ReplicationMatrix& target) {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmitResult result;
  if (target.num_servers() != model_.num_servers() ||
      target.num_objects() != model_.num_objects()) {
    result.status = AdmitResult::Status::kMismatched;
    result.error = "target dimensions do not match the daemon's model";
    return result;
  }
  if (!storage_feasible(model_, target)) {
    result.status = AdmitResult::Status::kInfeasible;
    result.error = "target placement is not storage-feasible";
    ++counters_.infeasible;
    return result;
  }
  if (queue_.full() && options_.policy == QueuePolicy::kReject) {
    result.status = AdmitResult::Status::kRejected;
    result.retry_after = std::max<Tick>(1, options_.readmit_backoff.base_backoff);
    result.error = "admission queue is full";
    ++counters_.rejected;
    return result;
  }

  WalRecord rec;
  rec.type = WalRecordType::kAdmit;
  rec.seq = last_seq_ + 1;
  rec.attempt = 1;
  rec.clock = clock_;  // not_before: ready immediately
  rec.target = placement_pairs(target);
  if (queue_.full()) rec.replaces = queue_.newest_seq();

  if (durable_ && wal_.is_open()) wal_.append(rec);
  hook("admit");

  last_seq_ = rec.seq;
  PendingEpoch e{rec.seq, 1, rec.clock, target};
  if (rec.replaces != 0) {
    queue_.replace(rec.replaces, std::move(e));
    ++counters_.coalesced;
    result.status = AdmitResult::Status::kCoalesced;
    result.replaced = rec.replaces;
  } else {
    queue_.push(std::move(e));
    result.status = AdmitResult::Status::kAdmitted;
  }
  ++counters_.admitted;
  result.seq = rec.seq;
  OBS_COUNT("daemon.admitted");
  OBS_LOG_DEBUG("epoch admitted", obs::log_field("seq", rec.seq),
                obs::log_field("status", to_string(result.status)));
  return result;
}

DaemonCore::Outcome DaemonCore::process_epoch(const PendingEpoch& e) const {
  Outcome o;
  if (x_cur_ == e.target) {
    o.converged = true;
    o.x_after = x_cur_;
    return o;
  }
  const std::uint64_t kseed = epoch_seed(e.seq, e.attempt);

  Schedule plan;
  if (options_.portfolio) {
    PortfolioOptions po;
    po.budget.ticks = options_.plan_budget_ticks;
    plan = solve_portfolio(model_, x_cur_, e.target, kseed, po).schedule;
  } else {
    Rng rng(kseed);
    plan = make_pipeline(options_.algo).run(model_, x_cur_, e.target, rng);
  }

  exec::ExecutorOptions eo;
  eo.retry = options_.exec_retry;
  eo.replan_algo = options_.algo;
  eo.max_replans = options_.max_replans;
  eo.degrade_after = options_.degrade_after;
  eo.seed = kseed;
  // Graceful degradation: after max_attempts budgeted rounds the epoch
  // runs unbudgeted, so convergence is guaranteed eventually.
  eo.budget_ticks = e.attempt <= options_.max_attempts ? options_.epoch_budget_ticks : 0;

  const exec::ExecutionReport report =
      exec::execute_schedule(model_, x_cur_, e.target, plan, options_.faults, eo);

  // Paranoia: the effective prefix must replay against what we are about
  // to commit. A failure here is a bug, not an input error — refuse to
  // write a commit record we cannot defend.
  if (!Validator::is_valid(model_, x_cur_, report.final_placement, report.effective)) {
    throw DaemonError("epoch " + std::to_string(e.seq) +
                      ": effective schedule does not validate");
  }

  o.converged = report.final_placement == e.target;
  o.x_after = report.final_placement;
  o.ticks = report.finished_at;
  o.cost = report.actual_cost;
  o.actions = report.effective.size();
  o.effective = report.effective;
  return o;
}

WalRecord DaemonCore::commit_record_locked(const PendingEpoch& e,
                                           const Outcome& o) const {
  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  rec.seq = e.seq;
  rec.attempt = e.attempt;
  rec.clock = clock_ + o.ticks;
  rec.converged = o.converged;
  rec.placement_crc = placement_fingerprint(o.x_after);
  rec.cost = o.cost;
  rec.actions = o.actions;
  if (!o.converged) {
    rec.readmit = true;
    // Deterministic backoff keyed by (seed, seq, attempt); the stream is
    // independent of the executor's.
    Rng rng(mix64(epoch_seed(e.seq, e.attempt), 0xba0cull));
    const int failures = static_cast<int>(
        std::min<std::uint32_t>(e.attempt, 30));  // cap the exponent
    rec.readmit_not_before =
        rec.clock + exec::backoff_wait(options_.readmit_backoff, failures, rng);
  }
  return rec;
}

void DaemonCore::apply_commit_locked(const PendingEpoch& e, const Outcome& o,
                                     bool during_replay) {
  (void)e;
  (void)during_replay;
  x_cur_ = o.x_after;
  x_crc_ = placement_fingerprint(x_cur_);
  clock_ += o.ticks;
  counters_.actions_applied += o.actions;
  counters_.cost_paid += o.cost;
  if (o.converged) {
    ++counters_.converged;
  } else {
    ++counters_.partial_rounds;
  }
  if (options_.record_effective) {
    for (const Action& a : o.effective) effective_log_.push_back(a);
  }
  ++commits_since_checkpoint_;
}

bool DaemonCore::step() {
  PendingEpoch e;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    // Strict sequence order: targets apply in submission order, so the
    // placement never moves backward to an older target once a newer one
    // has landed. A backing-off front epoch delays the whole queue by
    // jumping the virtual clock to its gate (the daemon has nothing else
    // to do with the time).
    const PendingEpoch& front = queue_.entries().front();
    if (front.not_before > clock_) clock_ = front.not_before;
    e = queue_.pop(front.seq, front.attempt);

    WalRecord rec;
    rec.type = WalRecordType::kBegin;
    rec.seq = e.seq;
    rec.attempt = e.attempt;
    rec.clock = clock_;
    if (durable_ && wal_.is_open()) wal_.append(rec);
    hook("begin");
  }

  OBS_LOG_DEBUG("epoch begin", obs::log_field("seq", e.seq),
                obs::log_field("attempt", static_cast<std::uint64_t>(e.attempt)));
  // Processing runs outside the lock: admissions (HTTP threads) may land
  // meanwhile; they only touch the queue and the WAL, never x_cur_.
  const Outcome o = process_epoch(e);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const WalRecord rec = commit_record_locked(e, o);
    if (durable_ && wal_.is_open()) wal_.append(rec);
    hook("commit");
    apply_commit_locked(e, o, /*during_replay=*/false);
    if (rec.readmit) {
      queue_.push(PendingEpoch{e.seq, e.attempt + 1, rec.readmit_not_before,
                               e.target});
      ++counters_.readmissions;
    }
    OBS_COUNT("daemon.commits");
    OBS_GAUGE_SET("daemon.clock", clock_);
    OBS_GAUGE_SET("daemon.queue_depth",
                  static_cast<std::int64_t>(queue_.size()));
    OBS_LOG_INFO("epoch commit", obs::log_field("seq", e.seq),
                 obs::log_field("attempt", static_cast<std::uint64_t>(e.attempt)),
                 obs::log_field("converged", o.converged),
                 obs::log_field("cost", static_cast<std::int64_t>(o.cost)),
                 obs::log_field("clock", static_cast<std::int64_t>(clock_)));
    maybe_checkpoint_locked();
  }
  return true;
}

void DaemonCore::run_until_idle() {
  while (step()) {
  }
}

CheckpointDoc DaemonCore::snapshot_locked() const {
  CheckpointDoc doc;
  doc.generation = generation_;
  doc.seed = options_.seed;
  doc.last_seq = last_seq_;
  doc.clock = clock_;
  doc.servers = model_.num_servers();
  doc.objects = model_.num_objects();
  doc.model_crc = model_fingerprint(model_);
  doc.placement = placement_pairs(x_cur_);
  doc.counters = counters_;
  for (const PendingEpoch& e : queue_.entries()) {
    doc.queue.push_back(CheckpointQueueEntry{e.seq, e.attempt, e.not_before,
                                             placement_pairs(e.target)});
  }
  return doc;
}

void DaemonCore::checkpoint_locked() {
  if (!durable_) return;
  ++counters_.checkpoints;  // before the snapshot, so recovery agrees
  ++generation_;
  CheckpointDoc doc = snapshot_locked();
  write_checkpoint_file(checkpoint_path(), doc, options_.fsync);
  commits_since_checkpoint_ = 0;
  // The chaos hook sits between the checkpoint and the WAL rotation: a
  // crash here leaves a WAL one generation behind — the stale-WAL path.
  hook("checkpoint");
  wal_.close();
  wal_.create(wal_path(), generation_, options_.fsync);
  OBS_COUNT("daemon.checkpoints");
  OBS_LOG_INFO("checkpoint written", obs::log_field("generation", generation_),
               obs::log_field("clock", static_cast<std::int64_t>(clock_)));
}

void DaemonCore::maybe_checkpoint_locked() {
  if (commits_since_checkpoint_ >= options_.checkpoint_every) checkpoint_locked();
}

void DaemonCore::checkpoint_now() {
  std::lock_guard<std::mutex> lock(mutex_);
  checkpoint_locked();
}

void DaemonCore::shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!durable_ || !wal_.is_open()) return;
  checkpoint_locked();
  wal_.close();
  durable_ = false;
}

void DaemonCore::abandon() {
  std::lock_guard<std::mutex> lock(mutex_);
  wal_.close();
  durable_ = false;
}

void DaemonCore::recover(const ReplicationMatrix& x_start, RecoverReport& report) {
  std::lock_guard<std::mutex> lock(mutex_);
  (void)x_start;  // already copied into x_cur_; only used when no checkpoint

  if (file_exists(checkpoint_path())) {
    CheckpointDoc doc;
    try {
      doc = read_checkpoint_file(checkpoint_path());
    } catch (const std::exception& e) {
      throw DaemonError(std::string("corrupt checkpoint: ") + e.what());
    }
    if (doc.seed != options_.seed) {
      throw DaemonError("checkpoint seed mismatch (checkpoint " +
                        std::to_string(doc.seed) + ", daemon " +
                        std::to_string(options_.seed) + ")");
    }
    if (doc.servers != model_.num_servers() || doc.objects != model_.num_objects() ||
        doc.model_crc != model_fingerprint(model_)) {
      throw DaemonError("checkpoint does not match this instance");
    }
    generation_ = doc.generation;
    last_seq_ = doc.last_seq;
    clock_ = doc.clock;
    counters_ = doc.counters;
    try {
      x_cur_ = placement_from_pair_list(doc.servers, doc.objects, doc.placement);
      for (const CheckpointQueueEntry& q : doc.queue) {
        queue_.push(PendingEpoch{
            q.seq, q.attempt, q.not_before,
            placement_from_pair_list(doc.servers, doc.objects, q.target)});
      }
    } catch (const std::exception& e) {
      throw DaemonError(std::string("corrupt checkpoint: ") + e.what());
    }
    x_crc_ = placement_fingerprint(x_cur_);
    report.had_checkpoint = true;
  }
  report.generation = generation_;

  if (!file_exists(wal_path())) {
    wal_.create(wal_path(), generation_, options_.fsync);
  } else {
    WalReadResult wal;
    try {
      wal = read_wal_file(wal_path());
    } catch (const std::exception& e) {
      throw DaemonError(std::string("corrupt wal: ") + e.what());
    }
    if (wal.generation == generation_) {
      if (wal.torn()) {
        // A torn tail is rolled back on disk before anything else — it
        // must never be appended after, let alone replayed.
        truncate_file(wal_path(), wal.valid_bytes);
        report.rolled_back_bytes = wal.rolled_back_bytes;
      }
      wal_.open_append(wal_path(), wal.valid_bytes, options_.fsync);

      std::optional<std::pair<PendingEpoch, Outcome>> inflight;
      const auto in_queue = [&](std::uint64_t seq, std::uint32_t attempt) {
        for (const PendingEpoch& p : queue_.entries()) {
          if (p.seq == seq && p.attempt == attempt) return true;
        }
        return false;
      };
      for (const WalRecord& rec : wal.records) {
        ++report.records_replayed;
        switch (rec.type) {
          case WalRecordType::kAdmit: {
            ReplicationMatrix target;
            try {
              target = placement_from_pair_list(model_.num_servers(),
                                                model_.num_objects(), rec.target);
            } catch (const std::exception& e) {
              throw DaemonError(std::string("wal admit record: ") + e.what());
            }
            PendingEpoch e{rec.seq, rec.attempt, rec.clock, std::move(target)};
            if (rec.replaces != 0) {
              bool present = false;
              for (const PendingEpoch& p : queue_.entries()) {
                present = present || p.seq == rec.replaces;
              }
              if (!present) {
                throw DaemonError("wal admit record replaces unknown seq " +
                                  std::to_string(rec.replaces));
              }
              queue_.replace(rec.replaces, std::move(e));
              ++counters_.coalesced;
            } else {
              queue_.push(std::move(e));
            }
            ++counters_.admitted;
            last_seq_ = std::max(last_seq_, rec.seq);
            break;
          }
          case WalRecordType::kBegin: {
            if (inflight.has_value()) {
              throw DaemonError("wal: BEGIN " + std::to_string(rec.seq) +
                                " while epoch " +
                                std::to_string(inflight->first.seq) +
                                " is still open");
            }
            if (!in_queue(rec.seq, rec.attempt)) {
              throw DaemonError("wal: BEGIN for unknown epoch " +
                                std::to_string(rec.seq) + " attempt " +
                                std::to_string(rec.attempt));
            }
            // The BEGIN clock includes the live run's jump over backoff
            // gates (step() fast-forwards when nothing is ready); restore
            // it so the redone commit lands on the same timeline.
            clock_ = rec.clock;
            PendingEpoch e = queue_.pop(rec.seq, rec.attempt);
            // Redo is pure, so this reproduces the pre-crash processing
            // bit-identically.
            Outcome o = process_epoch(e);
            ++report.reprocessed;
            inflight.emplace(std::move(e), std::move(o));
            break;
          }
          case WalRecordType::kCommit: {
            if (!inflight.has_value() || inflight->first.seq != rec.seq ||
                inflight->first.attempt != rec.attempt) {
              throw DaemonError("wal: COMMIT without matching BEGIN (seq " +
                                std::to_string(rec.seq) + ")");
            }
            const PendingEpoch& e = inflight->first;
            const Outcome& o = inflight->second;
            const WalRecord mine = commit_record_locked(e, o);
            if (mine.placement_crc != rec.placement_crc ||
                mine.converged != rec.converged || mine.clock != rec.clock ||
                mine.cost != rec.cost || mine.actions != rec.actions ||
                mine.readmit != rec.readmit ||
                mine.readmit_not_before != rec.readmit_not_before) {
              throw DaemonError(
                  "wal replay divergence at epoch " + std::to_string(rec.seq) +
                  " attempt " + std::to_string(rec.attempt) +
                  ": recomputed commit does not match the logged one");
            }
            apply_commit_locked(e, o, /*during_replay=*/true);
            if (rec.readmit) {
              queue_.push(PendingEpoch{e.seq, e.attempt + 1,
                                       rec.readmit_not_before, e.target});
              ++counters_.readmissions;
            }
            inflight.reset();
            break;
          }
        }
      }
      if (inflight.has_value()) {
        // The crash hit between BEGIN and COMMIT: the epoch was redone
        // above; finish it by writing the commit it never got.
        const PendingEpoch& e = inflight->first;
        const Outcome& o = inflight->second;
        const WalRecord rec = commit_record_locked(e, o);
        wal_.append(rec);
        apply_commit_locked(e, o, /*during_replay=*/true);
        if (rec.readmit) {
          queue_.push(PendingEpoch{e.seq, e.attempt + 1, rec.readmit_not_before,
                                   e.target});
          ++counters_.readmissions;
        }
        ++report.completed_begin;
      }
      commits_since_checkpoint_ = 0;
      for (const WalRecord& rec : wal.records) {
        if (rec.type == WalRecordType::kCommit) ++commits_since_checkpoint_;
      }
      if (report.completed_begin > 0) ++commits_since_checkpoint_;
    } else if (report.had_checkpoint && wal.generation + 1 == generation_) {
      // The crash landed between the checkpoint write and the WAL
      // rotation: every record in this WAL is already folded into the
      // checkpoint. Replaying it would double-apply — discard it.
      report.wal_stale = true;
      wal_.create(wal_path(), generation_, options_.fsync);
    } else {
      throw DaemonError("wal generation " + std::to_string(wal.generation) +
                        " is incompatible with checkpoint generation " +
                        std::to_string(generation_));
    }
  }

  ++counters_.recoveries;
  OBS_LOG_INFO("recovery complete", obs::log_field("generation", generation_),
               obs::log_field("replayed", report.records_replayed),
               obs::log_field("rolled_back_bytes", report.rolled_back_bytes));
  // Boundary case: the crash hit after the checkpoint_every-th commit was
  // logged but before its checkpoint — take it now, exactly where the
  // uninterrupted run would have.
  maybe_checkpoint_locked();
}

bool DaemonCore::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty();
}

Tick DaemonCore::clock() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_;
}

std::uint64_t DaemonCore::last_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_seq_;
}

DaemonCounters DaemonCore::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::uint64_t DaemonCore::placement_crc() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return x_crc_;
}

DaemonCore::Status DaemonCore::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Status s;
  s.clock = clock_;
  s.queue_depth = queue_.size();
  s.queue_capacity = queue_.max_depth();
  s.idle = queue_.empty();
  s.last_seq = last_seq_;
  s.generation = generation_;
  s.placement_crc = x_crc_;
  s.counters = counters_;
  return s;
}

}  // namespace rtsp::daemon
