// Bounded admission queue for the rebalancing daemon: pending target
// placements ordered by sequence number, with a virtual-clock re-admission
// gate (`not_before`) for partially-converged epochs backing off.
//
// The queue itself is a plain data structure — DaemonCore serializes all
// access under its own mutex (admission, processing and checkpointing must
// agree on one consistent view anyway). Pop order is strict sequence
// order: targets apply in submission order so the daemon's placement
// never moves backward to an older target; a backing-off front epoch
// delays the queue (the daemon jumps its virtual clock over the gate)
// rather than being overtaken, and floods are handled by coalescing at
// admission instead of reordering at dispatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/replication.hpp"
#include "exec/fault_model.hpp"

namespace rtsp::daemon {

using exec::Tick;

/// One queued unit of work: "converge the cluster to `target`".
struct PendingEpoch {
  std::uint64_t seq = 0;
  std::uint32_t attempt = 1;  ///< 1 on admission, bumped per re-admission
  Tick not_before = 0;        ///< earliest virtual clock at which to run
  ReplicationMatrix target;
};

/// What admission does when the queue is full.
enum class QueuePolicy {
  kReject,    ///< bounce the submission with a retry-after hint
  kCoalesce,  ///< replace the newest pending epoch (latest target wins)
};

const char* to_string(QueuePolicy p);

class EpochQueue {
 public:
  explicit EpochQueue(std::size_t max_depth);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  bool full() const { return entries_.size() >= max_depth_; }
  std::size_t max_depth() const { return max_depth_; }

  /// Inserts keeping ascending seq order. Used for admission, re-admission
  /// and recovery replay; asserts on duplicate (seq, attempt).
  void push(PendingEpoch e);

  /// Seq of the newest entry (coalesce victim). Queue must be non-empty.
  std::uint64_t newest_seq() const;

  /// Replaces the entry with seq `victim` by `e` (the coalesce path).
  /// Asserts that the victim exists.
  void replace(std::uint64_t victim, PendingEpoch e);

  /// Lowest-seq entry with not_before <= now, or nullptr when none is
  /// ready (the pointer is invalidated by any mutation).
  const PendingEpoch* next_ready(Tick now) const;

  /// Smallest not_before over all entries — where the daemon clock jumps
  /// when everything pending is backing off. Queue must be non-empty.
  Tick earliest_not_before() const;

  /// Removes and returns the entry (seq, attempt); asserts it exists.
  PendingEpoch pop(std::uint64_t seq, std::uint32_t attempt);

  /// Pending entries in seq order (checkpoint snapshots).
  const std::vector<PendingEpoch>& entries() const { return entries_; }

 private:
  std::size_t max_depth_;
  std::vector<PendingEpoch> entries_;  ///< ascending seq
};

}  // namespace rtsp::daemon
