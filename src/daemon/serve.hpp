// The `rtsp serve` runtime around DaemonCore: epoch feeds (a file stream
// and/or a loopback HTTP control plane), the graceful-lifecycle signal
// protocol, and the distinct exit codes scripts key on.
//
//   exit 0  idle exit (all work converged) or clean end of the feed
//   exit 1  user error (CLI handles it before run_serve)
//   exit 3  SIGTERM / first SIGINT / POST /drain — drained and flushed
//   exit 4  unrecoverable state (corrupt checkpoint, WAL divergence)
//
// SIGTERM and the first SIGINT request a drain: the in-flight epoch
// finishes, a final checkpoint is written, then the process exits 3. A
// second SIGINT force-quits with _Exit(130) — no flush, which is exactly
// what the recovery path is for. Handlers only set a volatile
// sig_atomic_t flag; all real work happens on the serve loop thread.
#pragma once

#include <iosfwd>
#include <string>

#include "daemon/daemon.hpp"

namespace rtsp::daemon {

inline constexpr int kServeExitOk = 0;
inline constexpr int kServeExitDrained = 3;
inline constexpr int kServeExitCorrupt = 4;

struct ServeOptions {
  DaemonOptions core;
  std::string instance_path;  ///< required: defines the model and X_start
  std::string epochs_path;    ///< optional rtsp-epochs file to feed
  bool recover = false;       ///< resume from core.state_dir

  /// HTTP control plane: < 0 disables; 0 picks an ephemeral port. Serves
  /// POST /epochs, GET /daemon/status, POST /drain, POST /checkpoint on
  /// top of the built-in introspection endpoints.
  int listen_port = -1;
  std::string port_file;   ///< write the bound port here (scripts)
  std::string final_out;   ///< write the final placement here on exit
  /// Listen mode: exit 0 after the queue has been idle this long
  /// (< 0 = keep serving until a signal).
  long idle_exit_ms = -1;
};

/// Runs the daemon to completion. Returns a process exit code; writes the
/// summary to `out` and complaints to `err`.
int run_serve(const ServeOptions& options, std::ostream& out, std::ostream& err);

}  // namespace rtsp::daemon
