// Minimal CSV writer with RFC-4180 quoting, used for experiment dumps.
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace rtsp {

/// Streams rows to an std::ostream. Fields containing commas, quotes or
/// newlines are quoted; numeric overloads format with full precision.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes a header or data row from pre-formatted fields.
  void row(const std::vector<std::string>& fields);

  /// Incremental interface: field(...) repeatedly, then end_row().
  CsvWriter& field(const std::string& s);
  CsvWriter& field(const char* s) { return field(std::string(s)); }
  CsvWriter& field(double v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }
  void end_row();

  static std::string escape(const std::string& s);

 private:
  std::ostream& out_;
  bool at_row_start_ = true;
};

/// Owns an output file plus a CsvWriter on it; throws on open failure.
class CsvFile {
 public:
  explicit CsvFile(const std::string& path);
  CsvWriter& writer() { return writer_; }

 private:
  std::ofstream stream_;
  CsvWriter writer_;
};

}  // namespace rtsp
