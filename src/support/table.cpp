#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rtsp {

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void TextTable::align(std::size_t col, Align a) {
  if (aligns_.size() <= col) aligns_.resize(col + 1);
  aligns_[col] = a;
}

TextTable::Align TextTable::align_for(std::size_t col) const {
  if (col < aligns_.size() && aligns_[col]) return *aligns_[col];
  return col == 0 ? Align::Left : Align::Right;
}

void TextTable::print(std::ostream& out) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      const std::size_t pad = width[c] - cell.size();
      if (c) out << "  ";
      if (align_for(c) == Align::Right) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
    }
    out << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_mean_err(double mean, double err) {
  char buf[64];
  if (err > 0.0) {
    std::snprintf(buf, sizeof buf, "%.4g ± %.2g", mean, err);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", mean);
  }
  return buf;
}

}  // namespace rtsp
