#include "support/rng.hpp"

#include <unordered_set>

namespace rtsp {

std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t count) {
  RTSP_REQUIRE(count <= n);
  std::vector<std::size_t> out;
  out.reserve(count);
  if (count * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.below(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  } else {
    // Sparse case: rejection sampling into a hash set.
    std::unordered_set<std::size_t> seen;
    seen.reserve(count * 2);
    while (out.size() < count) {
      const std::size_t x = static_cast<std::size_t>(rng.below(n));
      if (seen.insert(x).second) out.push_back(x);
    }
  }
  return out;
}

}  // namespace rtsp
