// Column-aligned console table printer used by the benchmark harness to
// print paper-style figure series.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace rtsp {

/// Collects rows of string cells and prints them with padded columns.
/// The first row added via header() is separated by a rule.
class TextTable {
 public:
  /// Column alignment; numbers read better right-aligned.
  enum class Align { Left, Right };

  void header(std::vector<std::string> cells);
  void add_row(std::vector<std::string> cells);
  /// Sets the alignment of column `col` (default Right for all but col 0).
  void align(std::size_t col, Align a);

  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::optional<Align>> aligns_;

  Align align_for(std::size_t col) const;
};

/// Formats "mean ± stderr" with sensible precision for figure output.
std::string format_mean_err(double mean, double err);

}  // namespace rtsp
