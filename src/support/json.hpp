// Minimal streaming JSON writer shared by the io exporters and the obs
// metrics/trace export (which must not depend on the io layer), plus a small
// DOM parser (JsonValue / parse_json) for the readers that consume those
// files back: provenance sidecars and google-benchmark result JSON.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rtsp {

/// Streaming JSON writer with correct string escaping and comma handling.
/// Usage: obj/arr open scopes; key() inside objects; value() for leaves.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s) { return value(std::string(s)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  static std::string escape(const std::string& s);

 private:
  void element_prefix();

  std::ostream& out_;
  // Scope stack: true = needs a comma before the next element.
  std::string stack_;
  bool pending_key_ = false;
};

/// Shortest round-trippable decimal form of `v`, locale-independent
/// (std::to_chars; never a ',' decimal separator). Infinities and NaN —
/// which JSON cannot represent — come back as "null".
std::string format_double_json(double v);

/// Parsed JSON document node. Objects keep member order; numbers remember
/// whether the literal was integral so 64-bit ids round-trip exactly.
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  /// The integral value; throws when the literal was not integral.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  const Members& members() const;               ///< object members, in order

  /// Object member by key; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object member by key; throws std::runtime_error when absent.
  const JsonValue& at(const std::string& key) const;

 private:
  friend class JsonParser;
  Type type_ = Type::Null;
  bool bool_ = false;
  bool integral_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  Members members_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws std::runtime_error with a byte offset on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace rtsp
