// Minimal streaming JSON writer shared by the io exporters and the obs
// metrics/trace export (which must not depend on the io layer).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace rtsp {

/// Streaming JSON writer with correct string escaping and comma handling.
/// Usage: obj/arr open scopes; key() inside objects; value() for leaves.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s) { return value(std::string(s)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  static std::string escape(const std::string& s);

 private:
  void element_prefix();

  std::ostream& out_;
  // Scope stack: true = needs a comma before the next element.
  std::string stack_;
  bool pending_key_ = false;
};

/// Shortest round-trippable decimal form of `v`, locale-independent
/// (std::to_chars; never a ',' decimal separator). Infinities and NaN —
/// which JSON cannot represent — come back as "null".
std::string format_double_json(double v);

}  // namespace rtsp
