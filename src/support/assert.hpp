// Lightweight always-on assertion macros.
//
// RTSP_REQUIRE is used for precondition checks on public API boundaries and
// stays enabled in release builds: the library manipulates schedules whose
// invariants are cheap to check relative to the algorithms that use them.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rtsp {

/// Thrown when an RTSP_REQUIRE precondition fails.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace rtsp

/// Precondition check that throws rtsp::PreconditionError on failure.
#define RTSP_REQUIRE(expr)                                                \
  do {                                                                    \
    if (!(expr)) ::rtsp::detail::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Precondition check with a streamed message, e.g.
/// RTSP_REQUIRE_MSG(i < n, "server id " << i << " out of range");
#define RTSP_REQUIRE_MSG(expr, stream_expr)                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream rtsp_require_os_;                                   \
      rtsp_require_os_ << stream_expr;                                       \
      ::rtsp::detail::require_failed(#expr, __FILE__, __LINE__,              \
                                     rtsp_require_os_.str());                \
    }                                                                        \
  } while (0)
