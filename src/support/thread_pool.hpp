// Fixed-size thread pool plus a blocking parallel_for, used to run
// independent experiment trials concurrently.
//
// Design notes (per the HPC guides): all parallelism is explicit, shared
// mutable state is confined to the queue behind one mutex, and work items
// never share data — each trial owns its Rng and instance. Determinism is
// obtained by seeding per trial index, never per thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rtsp {

/// Simple FIFO thread pool. Tasks must not throw across the pool boundary
/// unless retrieved through submit()'s future.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 selects std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future propagates its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

 private:
  /// A queued task plus its enqueue timestamp, so workers can report how
  /// long it sat in the queue (obs pool.task_wait histogram).
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  /// Non-template tail of submit(): queues the erased task, maintains the
  /// obs queue-depth gauge, and wakes a worker.
  void enqueue(std::function<void()> fn);

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) on `pool`, blocking until all complete.
/// Exceptions from bodies are rethrown (the first one encountered).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Convenience: parallel_for on a transient pool with `threads` workers
/// (0 = hardware concurrency). For n==0 does nothing.
void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace rtsp
