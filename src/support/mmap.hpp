// MappedFile: read-only memory mapping of a whole file, with a portable
// read-into-memory fallback when mmap is unavailable (non-POSIX platforms,
// special files, or mapping failures). Either way the file contents are
// reachable through data()/size(); mapped() tells callers which path was
// taken so they can report bytes actually mapped.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rtsp {

class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  ~MappedFile();

  /// Maps (or reads) `path`; throws std::runtime_error when the file cannot
  /// be opened. Zero-length files yield data() == nullptr, size() == 0.
  static MappedFile open(const std::string& path);

  const unsigned char* data() const {
    return map_ ? static_cast<const unsigned char*>(map_) : fallback_.data();
  }
  std::size_t size() const { return size_; }
  /// True when the contents live in an actual mmap, not the heap fallback.
  bool mapped() const { return map_ != nullptr; }

 private:
  void reset();

  void* map_ = nullptr;
  std::size_t size_ = 0;
  std::vector<unsigned char> fallback_;
};

}  // namespace rtsp
