#include "support/mmap.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define RTSP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define RTSP_HAVE_MMAP 0
#endif

namespace rtsp {

MappedFile::MappedFile(MappedFile&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      fallback_(std::move(other.fallback_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  reset();
  map_ = std::exchange(other.map_, nullptr);
  size_ = std::exchange(other.size_, 0);
  fallback_ = std::move(other.fallback_);
  return *this;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() {
#if RTSP_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
  map_ = nullptr;
  size_ = 0;
  fallback_.clear();
}

MappedFile MappedFile::open(const std::string& path) {
  MappedFile f;
#if RTSP_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      f.size_ = static_cast<std::size_t>(st.st_size);
      if (f.size_ == 0) {
        ::close(fd);
        return f;
      }
      void* map = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        f.map_ = map;
        return f;
      }
      f.size_ = 0;  // fall through to the portable path
    } else {
      ::close(fd);
    }
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  in.seekg(0, std::ios::end);
  const std::streamoff len = in.tellg();
  in.seekg(0, std::ios::beg);
  f.fallback_.resize(static_cast<std::size_t>(len));
  if (len > 0 &&
      !in.read(reinterpret_cast<char*>(f.fallback_.data()), len)) {
    throw std::runtime_error("cannot read '" + path + "'");
  }
  f.size_ = f.fallback_.size();
  return f;
}

}  // namespace rtsp
