// Small string helpers shared across the library.
#pragma once

#include <string>
#include <vector>

namespace rtsp {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s);

std::string to_lower(std::string s);

/// Joins items with `sep`.
std::string join(const std::vector<std::string>& items, const std::string& sep);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace rtsp
