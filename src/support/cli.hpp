// Tiny command-line / environment option parser for benches and examples.
//
// Usage:
//   CliOptions cli(argc, argv);
//   int trials = cli.get_int("trials", "RTSP_TRIALS", 5);
//   std::string out = cli.get_string("csv", "RTSP_CSV", "");
//
// Flags are accepted as --name=value or --name value. Environment variables
// (if named) act as defaults below explicit flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rtsp {

class CliOptions {
 public:
  CliOptions() = default;
  CliOptions(int argc, const char* const* argv);

  /// True if --name or --name=... was passed.
  bool has(const std::string& name) const;

  /// Lookup order: explicit flag, then environment variable (if env_var
  /// non-empty), then fallback.
  std::string get_string(const std::string& name, const std::string& env_var,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, const std::string& env_var,
                       std::int64_t fallback) const;
  double get_double(const std::string& name, const std::string& env_var,
                    double fallback) const;
  bool get_bool(const std::string& name, const std::string& env_var,
                bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rtsp
