#include "support/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "support/string_util.hpp"

namespace rtsp {

CliOptions::CliOptions(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg.erase(0, 2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[arg] = argv[++i];
      } else {
        flags_[arg] = "true";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliOptions::has(const std::string& name) const { return flags_.count(name) != 0; }

std::string CliOptions::get_string(const std::string& name, const std::string& env_var,
                                   const std::string& fallback) const {
  const auto it = flags_.find(name);
  if (it != flags_.end()) return it->second;
  if (!env_var.empty()) {
    if (const char* v = std::getenv(env_var.c_str())) return v;
  }
  return fallback;
}

std::int64_t CliOptions::get_int(const std::string& name, const std::string& env_var,
                                 std::int64_t fallback) const {
  const std::string s = get_string(name, env_var, "");
  if (s.empty()) return fallback;
  return std::stoll(s);
}

double CliOptions::get_double(const std::string& name, const std::string& env_var,
                              double fallback) const {
  const std::string s = get_string(name, env_var, "");
  if (s.empty()) return fallback;
  return std::stod(s);
}

bool CliOptions::get_bool(const std::string& name, const std::string& env_var,
                          bool fallback) const {
  std::string s = get_string(name, env_var, "");
  if (s.empty()) return fallback;
  s = to_lower(s);
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw std::invalid_argument("boolean option '" + name + "' got '" + s + "'");
}

}  // namespace rtsp
