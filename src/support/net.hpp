// Minimal POSIX TCP primitives for the embedded introspection server
// (obs/introspect), the daemon control plane (`rtsp serve` / `rtsp submit`)
// and their tests: an RAII socket, a loopback listener with poll-based
// (interruptible) accept, and tiny blocking HTTP/1.1 GET/POST clients so
// the scrape and daemon smokes in scripts/check.sh need no curl.
//
// Deliberately not a general networking layer: IPv4 only, blocking I/O,
// no TLS. Every read primitive takes one *overall* deadline (`timeout_ms`
// bounds the whole call, not each poll), so a stalled or slow-dripping
// peer can never pin a caller for longer than the budget it was given.
// Throws std::runtime_error on setup failures (bind/listen/connect);
// per-connection read/write errors are reported through return values so
// a dropped scraper never kills the serving process.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rtsp::net {

/// RAII file-descriptor wrapper for one connected TCP socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Writes all of `data` (retrying short writes); false on any error.
  bool write_all(std::string_view data);

  /// Appends incoming bytes to `buffer` until `terminator` appears in it,
  /// `max_bytes` is reached, the peer closes, or the overall `timeout_ms`
  /// deadline passes. True iff the terminator was seen. A peer that drips
  /// one byte per poll still cannot extend the call past the deadline.
  bool read_until(std::string& buffer, std::string_view terminator,
                  std::size_t max_bytes, int timeout_ms);

  /// Appends bytes until `buffer` reaches `target_size`, the peer closes,
  /// or the deadline passes. True iff the target size was reached —
  /// partial reads (short bodies) report false instead of hanging.
  bool read_exact(std::string& buffer, std::size_t target_size,
                  int timeout_ms);

  /// Reads until EOF, the deadline, or max_bytes, appending to `buffer`.
  void read_to_eof(std::string& buffer, std::size_t max_bytes, int timeout_ms);

 private:
  int fd_ = -1;
};

/// Listening IPv4 TCP socket. accept() polls with a short timeout so a
/// server loop can observe its stop flag without platform-specific
/// self-pipe tricks.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on host:port. Port 0 picks an ephemeral port;
  /// port() reports the one actually bound. Throws std::runtime_error.
  void listen(const std::string& host, std::uint16_t port, int backlog = 16);

  bool listening() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection; an invalid Socket means
  /// the poll timed out (or the listener was closed) — poll again.
  Socket accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to host:port with a bounded (non-blocking + poll) connect
/// instead of the platform's multi-minute default. Throws
/// std::runtime_error on failure or timeout; the returned socket is
/// blocking.
Socket connect_to(const std::string& host, std::uint16_t port,
                  int timeout_ms);

/// One parsed HTTP response (status line + raw headers + body).
struct HttpResponse {
  int status = 0;
  std::string headers;  ///< raw header block, without the status line
  std::string body;
};

/// Case-insensitive Content-Length lookup in a raw header block;
/// -1 when absent or malformed.
long long find_content_length(std::string_view headers);

/// Blocking HTTP/1.1 GET of `target` (e.g. "/metrics") from host:port.
/// `timeout_ms` bounds the whole exchange (connect + send + read). Bodies
/// are read to Content-Length when the server declares one, else to EOF.
/// Throws std::runtime_error on connect/send failure, timeout, or an
/// unparsable/truncated response.
HttpResponse http_get(const std::string& host, std::uint16_t port,
                      const std::string& target, int timeout_ms = 5000);

/// Blocking HTTP/1.1 POST of `body` to `target`, same contract as
/// http_get. Used by `rtsp submit` to feed epochs into a running daemon.
HttpResponse http_post(const std::string& host, std::uint16_t port,
                       const std::string& target, const std::string& body,
                       const std::string& content_type = "application/json",
                       int timeout_ms = 5000);

}  // namespace rtsp::net
