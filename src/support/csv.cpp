#include "support/csv.hpp"

#include <charconv>
#include <stdexcept>

namespace rtsp {

std::string CsvWriter::escape(const std::string& s) {
  const bool needs_quotes =
      s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) field(f);
  end_row();
}

CsvWriter& CsvWriter::field(const std::string& s) {
  if (!at_row_start_) out_ << ',';
  out_ << escape(s);
  at_row_start_ = false;
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  // std::to_chars is locale-independent; "%.17g" under e.g. de_DE writes a
  // ',' decimal separator, which silently splits the field.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return field(std::string(buf, res.ptr));
}

CsvWriter& CsvWriter::field(std::int64_t v) { return field(std::to_string(v)); }
CsvWriter& CsvWriter::field(std::uint64_t v) { return field(std::to_string(v)); }

void CsvWriter::end_row() {
  out_ << '\n';
  at_row_start_ = true;
}

CsvFile::CsvFile(const std::string& path) : stream_(path), writer_(stream_) {
  if (!stream_) throw std::runtime_error("cannot open CSV output file: " + path);
}

}  // namespace rtsp
