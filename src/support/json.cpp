#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/assert.hpp"

namespace rtsp {

std::string format_double_json(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  RTSP_REQUIRE(res.ec == std::errc());
  return std::string(buf, res.ptr);
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::element_prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted "name":
  }
  if (!stack_.empty()) {
    if (stack_.back() == '1') out_ << ',';
    else stack_.back() = '1';
  }
}

JsonWriter& JsonWriter::begin_object() {
  element_prefix();
  out_ << '{';
  stack_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RTSP_REQUIRE(!stack_.empty());
  stack_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element_prefix();
  out_ << '[';
  stack_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RTSP_REQUIRE(!stack_.empty());
  stack_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  RTSP_REQUIRE(!pending_key_);
  element_prefix();
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  element_prefix();
  out_ << '"' << escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element_prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element_prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element_prefix();
  out_ << format_double_json(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element_prefix();
  out_ << (v ? "true" : "false");
  return *this;
}

}  // namespace rtsp
