#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "support/assert.hpp"

namespace rtsp {

std::string format_double_json(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  RTSP_REQUIRE(res.ec == std::errc());
  return std::string(buf, res.ptr);
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::element_prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted "name":
  }
  if (!stack_.empty()) {
    if (stack_.back() == '1') out_ << ',';
    else stack_.back() = '1';
  }
}

JsonWriter& JsonWriter::begin_object() {
  element_prefix();
  out_ << '{';
  stack_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RTSP_REQUIRE(!stack_.empty());
  stack_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element_prefix();
  out_ << '[';
  stack_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RTSP_REQUIRE(!stack_.empty());
  stack_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  RTSP_REQUIRE(!pending_key_);
  element_prefix();
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  element_prefix();
  out_ << '"' << escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  element_prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  element_prefix();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  element_prefix();
  out_ << format_double_json(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  element_prefix();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  element_prefix();
  out_ << "null";
  return *this;
}

namespace {

[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
  const char* names[] = {"null", "bool", "number", "string", "array", "object"};
  throw std::runtime_error(std::string("json: expected ") + want + ", got " +
                           names[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::Number) type_error("number", type_);
  return number_;
}

std::int64_t JsonValue::as_int() const {
  if (type_ != Type::Number || !integral_) type_error("integer", type_);
  return int_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::Array) type_error("array", type_);
  return items_;
}

const JsonValue::Members& JsonValue::members() const {
  if (type_ != Type::Object) type_error("object", type_);
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw std::runtime_error("json: missing key \"" + key + "\"");
  return *v;
}

/// Recursive-descent parser over the input view; depth-capped so malicious
/// nesting cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.type_ = JsonValue::Type::String;
        v.string_ = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.type_ = JsonValue::Type::Bool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.type_ = JsonValue::Type::Bool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences; our writers only emit < 0x20).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string_view lit = text_.substr(start, pos_ - start);
    JsonValue v;
    v.type_ = JsonValue::Type::Number;
    if (integral) {
      const auto res = std::from_chars(lit.begin(), lit.end(), v.int_);
      if (res.ec == std::errc() && res.ptr == lit.end()) {
        v.integral_ = true;
        v.number_ = static_cast<double>(v.int_);
        return v;
      }
    }
    const auto res = std::from_chars(lit.begin(), lit.end(), v.number_);
    if (res.ec != std::errc() || res.ptr != lit.end()) fail("invalid number");
    v.int_ = static_cast<std::int64_t>(v.number_);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace rtsp
