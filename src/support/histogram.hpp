// Fixed-bucket histogram with ASCII rendering, used by the CLI `stats`
// command to show transfer-cost distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rtsp {

class Histogram {
 public:
  /// `buckets` equal-width bins over [lo, hi]; values outside clamp to the
  /// edge bins. Requires lo < hi and buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  /// Convenience: bounds from the data itself (min..max, padded when
  /// degenerate). Requires non-empty values.
  static Histogram of(const std::vector<double>& values, std::size_t buckets = 10);

  void add(double value);

  std::size_t count() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

  /// Multi-line ASCII rendering, one row per bucket:
  ///   [   10,    20)  ####______  12
  std::string to_string(std::size_t bar_width = 30) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rtsp
