// Streaming statistics accumulators used by the experiment harness.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rtsp {

/// Welford-style accumulator: numerically stable mean/variance plus min/max.
class StatAccumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains samples for percentile queries in addition to moments.
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  double mean() const { return acc_.mean(); }
  double stddev() const { return acc_.stddev(); }
  double stderr_mean() const { return acc_.stderr_mean(); }
  double min() const { return acc_.min(); }
  double max() const { return acc_.max(); }
  /// Linear-interpolation percentile, q in [0,1]. Requires >= 1 sample.
  double percentile(double q) const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  StatAccumulator acc_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// "12.3k" / "4.56M"-style human-readable magnitude formatting.
std::string human_count(double v);

}  // namespace rtsp
