#include "support/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/assert.hpp"

namespace rtsp {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  RTSP_REQUIRE(lo < hi);
  RTSP_REQUIRE(buckets >= 1);
}

Histogram Histogram::of(const std::vector<double>& values, std::size_t buckets) {
  RTSP_REQUIRE(!values.empty());
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo == hi) hi = lo + 1.0;  // degenerate data: one wide bucket
  Histogram h(lo, hi, buckets);
  for (double v : values) h.add(v);
  return h;
}

void Histogram::add(double value) {
  const double span = hi_ - lo_;
  const double pos = (value - lo_) / span * static_cast<double>(counts_.size());
  const std::ptrdiff_t raw = static_cast<std::ptrdiff_t>(pos);
  const std::size_t idx = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
      raw, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1));
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::to_string(std::size_t bar_width) const {
  std::size_t max_count = 1;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char range[64];
    std::snprintf(range, sizeof range, "[%11.4g, %11.4g)", bucket_lo(i),
                  bucket_hi(i));
    const std::size_t filled = counts_[i] * bar_width / max_count;
    os << range << "  " << std::string(filled, '#')
       << std::string(bar_width - filled, ' ') << "  " << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace rtsp
