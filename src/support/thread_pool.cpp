#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/obs.hpp"

namespace rtsp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  Task task{std::move(fn), 0};
#if RTSP_OBS_ENABLED
  if (obs::enabled()) task.enqueue_ns = obs::now_ns();
#endif
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    depth = queue_.size();
  }
  OBS_COUNT("pool.tasks_submitted");
  OBS_GAUGE_SET("pool.queue_depth", depth);
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      OBS_GAUGE_SET("pool.queue_depth", queue_.size());
    }
#if RTSP_OBS_ENABLED
    if (task.enqueue_ns != 0) {
      const std::uint64_t start_ns = obs::now_ns();
      OBS_LATENCY_NS("pool.task_wait", start_ns - task.enqueue_ns);
      task.fn();
      OBS_LATENCY_NS("pool.task_run", obs::now_ns() - start_ns);
      continue;
    }
#endif
    task.fn();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // An atomic cursor gives dynamic load balancing: trials vary wildly in
  // runtime (OP1-heavy combos dominate), so static chunking would idle
  // workers.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error_mutex = std::make_shared<std::mutex>();
  auto error = std::make_shared<std::exception_ptr>();

  const std::size_t lanes = std::min(pool.size(), n);
  std::vector<std::future<void>> futs;
  futs.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futs.push_back(pool.submit([=, &body] {
      while (true) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= n || first_error->load()) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(*error_mutex);
          if (!first_error->exchange(true)) *error = std::current_exception();
          return;
        }
      }
    }));
  }
  for (auto& f : futs) f.get();
  if (first_error->load()) std::rethrow_exception(*error);
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  ThreadPool pool(threads);
  parallel_for(pool, n, body);
}

}  // namespace rtsp
