#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace rtsp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // An atomic cursor gives dynamic load balancing: trials vary wildly in
  // runtime (OP1-heavy combos dominate), so static chunking would idle
  // workers.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error_mutex = std::make_shared<std::mutex>();
  auto error = std::make_shared<std::exception_ptr>();

  const std::size_t lanes = std::min(pool.size(), n);
  std::vector<std::future<void>> futs;
  futs.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futs.push_back(pool.submit([=, &body] {
      while (true) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= n || first_error->load()) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(*error_mutex);
          if (!first_error->exchange(true)) *error = std::current_exception();
          return;
        }
      }
    }));
  }
  for (auto& f : futs) f.get();
  if (first_error->load()) std::rethrow_exception(*error);
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  ThreadPool pool(threads);
  parallel_for(pool, n, body);
}

}  // namespace rtsp
