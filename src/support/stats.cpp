#include "support/stats.hpp"

#include <algorithm>
#include <cstdio>

#include "support/assert.hpp"

namespace rtsp {

void StatAccumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StatAccumulator::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StatAccumulator::stderr_mean() const {
  return n_ >= 2 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void SampleSet::add(double x) {
  acc_.add(x);
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::percentile(double q) const {
  RTSP_REQUIRE(!samples_.empty());
  RTSP_REQUIRE(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string human_count(double v) {
  char buf[32];
  const double a = std::abs(v);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fG", v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  }
  return buf;
}

}  // namespace rtsp
