#include "support/string_util.hpp"

#include <algorithm>
#include <cctype>

namespace rtsp {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string join(const std::vector<std::string>& items, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace rtsp
