#include "support/net.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define RTSP_NET_POSIX 1
#else
#define RTSP_NET_POSIX 0
#endif

namespace rtsp::net {

long long find_content_length(std::string_view headers) {
  // Scan line by line: header names are case-insensitive per RFC 9110.
  std::size_t pos = 0;
  while (pos < headers.size()) {
    std::size_t end = headers.find("\r\n", pos);
    if (end == std::string_view::npos) end = headers.size();
    const std::string_view line = headers.substr(pos, end - pos);
    pos = end + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view name = line.substr(0, colon);
    constexpr std::string_view kKey = "content-length";
    if (name.size() != kKey.size()) continue;
    bool match = true;
    for (std::size_t i = 0; i < kKey.size(); ++i) {
      const char c = name[i];
      const char lower =
          (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
      if (lower != kKey[i]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\r')) {
      value.remove_suffix(1);
    }
    if (value.empty()) return -1;
    long long n = 0;
    for (const char c : value) {
      if (c < '0' || c > '9') return -1;
      if (n > (1LL << 40)) return -1;  // refuse absurd lengths
      n = n * 10 + (c - '0');
    }
    return n;
  }
  return -1;
}

#if RTSP_NET_POSIX

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Overall deadline for one read call: every poll gets the time remaining,
/// never the full original budget again.
class Deadline {
 public:
  explicit Deadline(int timeout_ms)
      : end_(std::chrono::steady_clock::now() +
             std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0)) {}

  /// Milliseconds left, clamped to >= 0.
  int remaining_ms() const {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        end_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
  }

  bool expired() const { return remaining_ms() <= 0; }

 private:
  std::chrono::steady_clock::time_point end_;
};

/// poll() one fd for `events`; true when ready, false on timeout.
bool wait_ready(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return (p.revents & (events | POLLERR | POLLHUP)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid IPv4 address: " + host);
  }
  return addr;
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::write_all(std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!wait_ready(fd_, POLLOUT, 1000)) return false;
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::read_until(std::string& buffer, std::string_view terminator,
                        std::size_t max_bytes, int timeout_ms) {
  char chunk[4096];
  const Deadline deadline(timeout_ms);
  while (buffer.find(terminator) == std::string::npos) {
    if (buffer.size() >= max_bytes) return false;
    const int left = deadline.remaining_ms();
    if (left <= 0) return false;
    if (!wait_ready(fd_, POLLIN, left)) return false;
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (n <= 0) return false;  // peer closed or error before the terminator
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

bool Socket::read_exact(std::string& buffer, std::size_t target_size,
                        int timeout_ms) {
  char chunk[4096];
  const Deadline deadline(timeout_ms);
  while (buffer.size() < target_size) {
    const int left = deadline.remaining_ms();
    if (left <= 0) return false;
    if (!wait_ready(fd_, POLLIN, left)) return false;
    const std::size_t want =
        std::min(sizeof chunk, target_size - buffer.size());
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (n <= 0) return false;  // short body: peer closed early
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

void Socket::read_to_eof(std::string& buffer, std::size_t max_bytes,
                         int timeout_ms) {
  char chunk[4096];
  const Deadline deadline(timeout_ms);
  while (buffer.size() < max_bytes) {
    const int left = deadline.remaining_ms();
    if (left <= 0) return;
    if (!wait_ready(fd_, POLLIN, left)) return;
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (n <= 0) return;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

void TcpListener::listen(const std::string& host, std::uint16_t port,
                         int backlog) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept(int timeout_ms) {
  if (fd_ < 0 || !wait_ready(fd_, POLLIN, timeout_ms)) return Socket{};
  const int conn = ::accept(fd_, nullptr, nullptr);
  return conn >= 0 ? Socket(conn) : Socket{};
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

Socket connect_to(const std::string& host, std::uint16_t port,
                  int timeout_ms) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  if (!set_nonblocking(fd, true)) throw_errno("fcntl O_NONBLOCK");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (errno != EINPROGRESS) {
      throw_errno("connect " + host + ":" + std::to_string(port));
    }
    if (!wait_ready(fd, POLLOUT, timeout_ms)) {
      throw std::runtime_error("connect " + host + ":" +
                               std::to_string(port) + ": timed out after " +
                               std::to_string(timeout_ms) + "ms");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      throw_errno("connect " + host + ":" + std::to_string(port));
    }
  }
  if (!set_nonblocking(fd, false)) throw_errno("fcntl restore blocking");
  return sock;
}

namespace {

HttpResponse http_request(const std::string& method, const std::string& host,
                          std::uint16_t port, const std::string& target,
                          const std::string& body,
                          const std::string& content_type, int timeout_ms) {
  const Deadline deadline(timeout_ms);
  Socket sock = connect_to(host, port, timeout_ms);
  std::string request = method + ' ' + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Type: " + content_type +
               "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  if (!sock.write_all(request)) {
    throw std::runtime_error("http " + method + ": send failed");
  }

  std::string raw;
  if (!sock.read_until(raw, "\r\n\r\n", std::size_t{1} << 20,
                       deadline.remaining_ms())) {
    throw std::runtime_error("http " + method +
                             ": timed out or closed before headers");
  }
  const std::size_t line_end = raw.find("\r\n");
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (line_end == std::string::npos || head_end == std::string::npos ||
      raw.compare(0, 5, "HTTP/") != 0) {
    throw std::runtime_error("http " + method + ": malformed response");
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    throw std::runtime_error("http " + method + ": malformed status line");
  }
  HttpResponse resp;
  resp.status = std::stoi(raw.substr(sp + 1, 3));
  resp.headers = raw.substr(line_end + 2, head_end - line_end - 2);
  resp.body = raw.substr(head_end + 4);

  const long long declared = find_content_length(resp.headers);
  if (declared >= 0) {
    if (resp.body.size() < static_cast<std::size_t>(declared)) {
      if (!sock.read_exact(resp.body, static_cast<std::size_t>(declared),
                           deadline.remaining_ms())) {
        throw std::runtime_error("http " + method + ": truncated body (" +
                                 std::to_string(resp.body.size()) + " of " +
                                 std::to_string(declared) + " bytes)");
      }
    } else {
      resp.body.resize(static_cast<std::size_t>(declared));
    }
  } else {
    sock.read_to_eof(resp.body, std::size_t{1} << 24, deadline.remaining_ms());
  }
  return resp;
}

}  // namespace

HttpResponse http_get(const std::string& host, std::uint16_t port,
                      const std::string& target, int timeout_ms) {
  return http_request("GET", host, port, target, std::string{}, std::string{},
                      timeout_ms);
}

HttpResponse http_post(const std::string& host, std::uint16_t port,
                       const std::string& target, const std::string& body,
                       const std::string& content_type, int timeout_ms) {
  return http_request("POST", host, port, target, body, content_type,
                      timeout_ms);
}

#else  // !RTSP_NET_POSIX: stubs so non-POSIX builds still link.

Socket::~Socket() = default;
Socket& Socket::operator=(Socket&&) noexcept { return *this; }
void Socket::close() {}
bool Socket::write_all(std::string_view) { return false; }
bool Socket::read_until(std::string&, std::string_view, std::size_t, int) {
  return false;
}
bool Socket::read_exact(std::string&, std::size_t, int) { return false; }
void Socket::read_to_eof(std::string&, std::size_t, int) {}

void TcpListener::listen(const std::string&, std::uint16_t, int) {
  throw std::runtime_error("TCP sockets unsupported on this platform");
}
Socket TcpListener::accept(int) { return Socket{}; }
void TcpListener::close() {}

Socket connect_to(const std::string&, std::uint16_t, int) {
  throw std::runtime_error("TCP sockets unsupported on this platform");
}

HttpResponse http_get(const std::string&, std::uint16_t, const std::string&, int) {
  throw std::runtime_error("TCP sockets unsupported on this platform");
}

HttpResponse http_post(const std::string&, std::uint16_t, const std::string&,
                       const std::string&, const std::string&, int) {
  throw std::runtime_error("TCP sockets unsupported on this platform");
}

#endif  // RTSP_NET_POSIX

}  // namespace rtsp::net
