#include "support/net.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define RTSP_NET_POSIX 1
#else
#define RTSP_NET_POSIX 0
#endif

namespace rtsp::net {

#if RTSP_NET_POSIX

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// poll() one fd for `events`; true when ready, false on timeout.
bool wait_ready(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return (p.revents & (events | POLLERR | POLLHUP)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::write_all(std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::read_until(std::string& buffer, std::string_view terminator,
                        std::size_t max_bytes, int timeout_ms) {
  char chunk[4096];
  while (buffer.find(terminator) == std::string::npos) {
    if (buffer.size() >= max_bytes) return false;
    if (!wait_ready(fd_, POLLIN, timeout_ms)) return false;
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // peer closed or error before the terminator
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return true;
}

void Socket::read_to_eof(std::string& buffer, std::size_t max_bytes,
                         int timeout_ms) {
  char chunk[4096];
  while (buffer.size() < max_bytes) {
    if (!wait_ready(fd_, POLLIN, timeout_ms)) return;
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

void TcpListener::listen(const std::string& host, std::uint16_t port,
                         int backlog) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept(int timeout_ms) {
  if (fd_ < 0 || !wait_ready(fd_, POLLIN, timeout_ms)) return Socket{};
  const int conn = ::accept(fd_, nullptr, nullptr);
  return conn >= 0 ? Socket(conn) : Socket{};
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

HttpResponse http_get(const std::string& host, std::uint16_t port,
                      const std::string& target, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  const sockaddr_in addr = make_addr(host, port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!sock.write_all(request)) throw std::runtime_error("http_get: send failed");

  std::string raw;
  sock.read_to_eof(raw, std::size_t{1} << 24, timeout_ms);
  const std::size_t line_end = raw.find("\r\n");
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (line_end == std::string::npos || head_end == std::string::npos ||
      raw.compare(0, 5, "HTTP/") != 0) {
    throw std::runtime_error("http_get: malformed response");
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    throw std::runtime_error("http_get: malformed status line");
  }
  HttpResponse resp;
  resp.status = std::stoi(raw.substr(sp + 1, 3));
  resp.headers = raw.substr(line_end + 2, head_end - line_end - 2);
  resp.body = raw.substr(head_end + 4);
  return resp;
}

#else  // !RTSP_NET_POSIX: stubs so non-POSIX builds still link.

Socket::~Socket() = default;
Socket& Socket::operator=(Socket&&) noexcept { return *this; }
void Socket::close() {}
bool Socket::write_all(std::string_view) { return false; }
bool Socket::read_until(std::string&, std::string_view, std::size_t, int) {
  return false;
}
void Socket::read_to_eof(std::string&, std::size_t, int) {}

void TcpListener::listen(const std::string&, std::uint16_t, int) {
  throw std::runtime_error("TCP sockets unsupported on this platform");
}
Socket TcpListener::accept(int) { return Socket{}; }
void TcpListener::close() {}

HttpResponse http_get(const std::string&, std::uint16_t, const std::string&, int) {
  throw std::runtime_error("TCP sockets unsupported on this platform");
}

#endif  // RTSP_NET_POSIX

}  // namespace rtsp::net
