// Deterministic, fast pseudo-random number generation.
//
// All experiment code seeds one Rng per trial via Rng::for_trial(base, trial)
// so results are reproducible independently of thread scheduling. We use
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, the standard
// recipe; std::mt19937_64 is avoided because its state is large and its
// distributions are not bit-reproducible across standard libraries.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace rtsp {

/// SplitMix64 step: used for seed expansion and cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit values into one (order-sensitive); used to derive
/// independent per-trial seeds from (base_seed, trial_index).
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2));
  std::uint64_t r = splitmix64(s);
  s ^= b;
  return r ^ splitmix64(s);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x8badf00ddeadbeefULL) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  /// Deterministic per-trial generator: trials are independent streams.
  static Rng for_trial(std::uint64_t base_seed, std::uint64_t trial) {
    return Rng(mix64(base_seed, trial));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method; bit-reproducible everywhere. bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    RTSP_REQUIRE(bound > 0);
    // 128-bit multiply; rejection keeps the distribution exactly uniform.
    while (true) {
      const std::uint64_t x = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    RTSP_REQUIRE(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return span == 0  // full 64-bit range
               ? static_cast<std::int64_t>((*this)())
               : lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform01() < p; }

  /// Fisher-Yates shuffle (deterministic given the generator state).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    RTSP_REQUIRE(!v.empty());
    return v[static_cast<std::size_t>(below(v.size()))];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Samples `count` distinct indices from [0, n) (count <= n), uniformly,
/// in O(count) expected time; result is in random order.
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t count);

}  // namespace rtsp
