#include "extension/dependency_graph.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"

namespace rtsp {

DependencyGraph::DependencyGraph(const Schedule& schedule)
    : deps_(schedule.size()), dependents_(schedule.size()) {
  // Latest transfer creating replica (server, object); latest deletion of
  // (server, object); readers of (server, object) since its creation.
  std::map<std::pair<ServerId, ObjectId>, std::size_t> last_create;
  std::map<std::pair<ServerId, ObjectId>, std::size_t> last_delete;
  std::map<std::pair<ServerId, ObjectId>, std::vector<std::size_t>> readers;

  for (std::size_t u = 0; u < schedule.size(); ++u) {
    const Action& a = schedule[u];
    if (a.is_transfer()) {
      // Source replica must exist: depend on its creating transfer.
      if (!is_dummy(a.source)) {
        const auto key = std::make_pair(a.source, a.object);
        if (const auto it = last_create.find(key); it != last_create.end()) {
          add_edge(it->second, u);
        }
        readers[key].push_back(u);
      }
      // Re-creation after deletion must wait for the deletion.
      const auto self = std::make_pair(a.server, a.object);
      if (const auto it = last_delete.find(self); it != last_delete.end()) {
        add_edge(it->second, u);
      }
      last_create[self] = u;
      readers[self].clear();
    } else {
      const auto self = std::make_pair(a.server, a.object);
      // All reads of the replica must complete first.
      for (std::size_t r : readers[self]) add_edge(r, u);
      readers[self].clear();
      // And its creation, if it happened inside the schedule.
      if (const auto it = last_create.find(self); it != last_create.end()) {
        add_edge(it->second, u);
      }
      last_delete[self] = u;
    }
  }
}

void DependencyGraph::add_edge(std::size_t before, std::size_t after) {
  RTSP_REQUIRE(before < after);
  auto& d = deps_[after];
  if (std::find(d.begin(), d.end(), before) == d.end()) {
    d.push_back(before);
    dependents_[before].push_back(after);
  }
}

std::size_t DependencyGraph::critical_path_length() const {
  std::vector<std::size_t> depth(deps_.size(), 1);
  std::size_t best = deps_.empty() ? 0 : 1;
  for (std::size_t u = 0; u < deps_.size(); ++u) {
    for (std::size_t d : deps_[u]) depth[u] = std::max(depth[u], depth[d] + 1);
    best = std::max(best, depth[u]);
  }
  return best;
}

bool DependencyGraph::edges_point_backwards() const {
  for (std::size_t u = 0; u < deps_.size(); ++u) {
    for (std::size_t d : deps_[u]) {
      if (d >= u) return false;
    }
  }
  return true;
}

}  // namespace rtsp
