// Dependency extraction for parallel schedule execution — groundwork for
// the paper's stated future work (reaching X_new within a time deadline).
//
// A sequential RTSP schedule over-serialises: only data dependencies must be
// kept. For a valid schedule we extract the precedence DAG:
//   * a transfer depends on the latest earlier transfer that created its
//     source replica (if the source is not an X_old holding);
//   * a deletion depends on every earlier transfer that reads the doomed
//     replica, and on the transfer that created it;
//   * a transfer to (i, k) depends on the latest earlier deletion D_ik
//     (re-creation after deletion).
// Capacity is a runtime resource, not a precedence edge; the makespan
// simulator enforces it when starting actions.
#pragma once

#include <vector>

#include "core/schedule.hpp"

namespace rtsp {

class DependencyGraph {
 public:
  /// Builds the DAG; `schedule` should be valid (checked by callers).
  explicit DependencyGraph(const Schedule& schedule);

  std::size_t size() const { return deps_.size(); }

  /// Indices of actions that must complete before action u starts.
  const std::vector<std::size_t>& dependencies_of(std::size_t u) const {
    return deps_[u];
  }
  /// Indices of actions waiting on u.
  const std::vector<std::size_t>& dependents_of(std::size_t u) const {
    return dependents_[u];
  }

  /// Length (in actions) of the longest dependency chain.
  std::size_t critical_path_length() const;

  /// True (always, by construction): every edge points backwards in the
  /// original order. Exposed for tests.
  bool edges_point_backwards() const;

 private:
  void add_edge(std::size_t before, std::size_t after);

  std::vector<std::vector<std::size_t>> deps_;
  std::vector<std::vector<std::size_t>> dependents_;
};

}  // namespace rtsp
