// Deadline-constrained RTSP — the paper's Sec. 2.2 future work ("study RTSP
// when X_new must be reached within a time deadline").
//
// meet_deadline() starts from a (typically cost-minimal) schedule and
// greedily rewrites it until its parallel makespan fits the deadline:
// each iteration identifies the transfer finishing last in the makespan
// simulation and tries two families of rewrites —
//   1. re-sourcing it to another replicator alive at its position (shifting
//      load off a hot source), and
//   2. hoisting it earlier in the schedule (with the same capacity repair
//      machinery H1/OP1 use), so it no longer waits on the critical chain —
// adopting the candidate with the lowest makespan (ties broken by cost)
// provided it validates and strictly improves the makespan. The result is
// monotone in makespan and reports whether the deadline was met; cost may
// rise — that trade-off is the point of the deadline variant.
#pragma once

#include "extension/makespan.hpp"

namespace rtsp {

struct DeadlineOptions {
  double deadline = 0.0;          ///< required makespan bound (time units)
  MakespanOptions execution;      ///< parallel-execution model
  std::size_t max_iterations = 200;
};

struct DeadlineResult {
  Schedule schedule;
  MakespanReport report;  ///< simulation of the returned schedule
  bool met = false;       ///< report.makespan <= deadline
  Cost cost = 0;
};

/// Rewrites `start` (which must be valid w.r.t. the instance) towards the
/// deadline. Never returns a schedule with a worse makespan than `start`.
DeadlineResult meet_deadline(const SystemModel& model, const ReplicationMatrix& x_old,
                             const ReplicationMatrix& x_new, Schedule start,
                             const DeadlineOptions& options);

}  // namespace rtsp
