#include "extension/makespan.hpp"

#include <algorithm>
#include <queue>

#include "core/cost_model.hpp"

namespace rtsp {

namespace {

struct Running {
  double finish;
  std::size_t index;
  bool operator>(const Running& o) const {
    return finish != o.finish ? finish > o.finish : index > o.index;
  }
};

}  // namespace

MakespanReport simulate_makespan(const SystemModel& model,
                                 const ReplicationMatrix& x_old,
                                 const Schedule& schedule,
                                 const MakespanOptions& options) {
  RTSP_REQUIRE(options.bandwidth > 0.0);
  RTSP_REQUIRE(options.ports >= 1);
  const std::size_t t_count = schedule.size();
  const DependencyGraph dag(schedule);

  // Per-server queues: actions touching a server's storage must *start* in
  // schedule order, which provably keeps occupancy within the sequential
  // envelope and makes the list scheduler deadlock-free (see header).
  std::vector<std::vector<std::size_t>> server_queue(model.num_servers());
  for (std::size_t u = 0; u < t_count; ++u) {
    server_queue[schedule[u].server].push_back(u);
  }
  std::vector<std::size_t> cursor(model.num_servers(), 0);

  std::vector<std::size_t> deps_left(t_count, 0);
  for (std::size_t u = 0; u < t_count; ++u) deps_left[u] = dag.dependencies_of(u).size();

  std::vector<Size> used(model.num_servers(), 0);
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    used[i] = x_old.used_storage(i, model.objects());
  }
  std::vector<std::size_t> ports_used(model.num_servers(), 0);

  std::vector<bool> finished(t_count, false);
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;

  MakespanReport report;
  report.start_times.assign(t_count, 0.0);
  double now = 0.0;
  std::size_t done = 0;

  auto duration = [&](const Action& a) {
    if (a.is_delete()) return 0.0;
    return static_cast<double>(action_cost(model, a)) / options.bandwidth;
  };
  for (std::size_t u = 0; u < t_count; ++u) report.serial_time += duration(schedule[u]);

  auto complete = [&](std::size_t u) {
    finished[u] = true;
    ++done;
    for (std::size_t w : dag.dependents_of(u)) --deps_left[w];
  };

  while (done < t_count) {
    // Start everything that can start now.
    bool progress = true;
    while (progress) {
      progress = false;
      for (ServerId s = 0; s < model.num_servers(); ++s) {
        if (cursor[s] >= server_queue[s].size()) continue;
        const std::size_t u = server_queue[s][cursor[s]];
        if (deps_left[u] != 0) continue;
        const Action& a = schedule[u];
        if (a.is_delete()) {
          // Instantaneous: storage is released and the action completes.
          used[s] -= model.object_size(a.object);
          report.start_times[u] = now;
          ++cursor[s];
          complete(u);
          progress = true;
        } else {
          if (model.capacity(s) - used[s] < model.object_size(a.object)) continue;
          if (ports_used[s] >= options.ports) continue;
          if (!is_dummy(a.source) && ports_used[a.source] >= options.ports) continue;
          used[s] += model.object_size(a.object);
          ++ports_used[s];
          if (!is_dummy(a.source)) ++ports_used[a.source];
          report.start_times[u] = now;
          ++cursor[s];
          running.push({now + duration(a), u});
          report.peak_parallelism = std::max(report.peak_parallelism, running.size());
          progress = true;
        }
      }
    }
    if (done == t_count) break;
    RTSP_REQUIRE_MSG(!running.empty(),
                     "makespan simulation stuck — schedule is not valid");
    // Advance to the earliest finish and retire every transfer ending then.
    now = running.top().finish;
    while (!running.empty() && running.top().finish == now) {
      const std::size_t u = running.top().index;
      running.pop();
      const Action& a = schedule[u];
      --ports_used[a.server];
      if (!is_dummy(a.source)) --ports_used[a.source];
      complete(u);
    }
  }

  report.makespan = now;
  report.speedup = report.makespan > 0.0 ? report.serial_time / report.makespan : 1.0;
  return report;
}

}  // namespace rtsp
