// Phase partitioning: turn a sequential schedule into synchronous rounds of
// concurrently executable actions — the "bulk" alternative to the
// event-driven makespan simulator for operators who deploy transitions in
// discrete maintenance windows.
//
// Round semantics: every action in a round starts together after the
// previous round fully completes. A round is feasible when (a) each action's
// dependencies finished in earlier rounds, (b) actions touching a server's
// storage appear in schedule order across rounds (same rule as the makespan
// simulator — keeps occupancy within the sequential envelope), (c) each
// server takes part in at most `ports` transfers and (d) destination
// capacity, accounted in schedule order, is never exceeded. Deletions are
// free and do not consume ports.
#pragma once

#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/system.hpp"

namespace rtsp {

struct PhasePlan {
  /// phases[r] lists the schedule positions executed in round r, ascending.
  std::vector<std::vector<std::size_t>> phases;

  std::size_t rounds() const { return phases.size(); }
  /// Size of the largest round.
  std::size_t max_width() const;
  /// Sum of the most expensive transfer per round (a bulk-synchronous
  /// makespan estimate when each round waits for its slowest transfer).
  Cost bottleneck_cost(const SystemModel& model, const Schedule& schedule) const;

  std::string to_string(const Schedule& schedule) const;
};

/// Greedily packs the valid schedule into rounds. RTSP_REQUIREs progress
/// (guaranteed for valid schedules, by the same argument as the makespan
/// simulator).
PhasePlan phase_partition(const SystemModel& model, const ReplicationMatrix& x_old,
                          const Schedule& schedule, std::size_t ports = 1);

}  // namespace rtsp
