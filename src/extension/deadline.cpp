#include "extension/deadline.hpp"

#include <algorithm>
#include <optional>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/surgery.hpp"

namespace rtsp {

namespace {

/// Transfer finish times, sorted descending — the profile the repair loop
/// minimises lexicographically. Minimising only the maximum plateaus as
/// soon as several transfers tie near the end; the lexicographic order
/// keeps draining the tail.
std::vector<double> finish_profile(const SystemModel& model, const Schedule& h,
                                   const MakespanReport& report, double bandwidth) {
  std::vector<double> finishes;
  finishes.reserve(h.size());
  for (std::size_t u = 0; u < h.size(); ++u) {
    if (!h[u].is_transfer()) continue;
    finishes.push_back(report.start_times[u] +
                       static_cast<double>(action_cost(model, h[u])) / bandwidth);
  }
  std::sort(finishes.begin(), finishes.end(), std::greater<>());
  return finishes;
}

bool lex_less(const std::vector<double>& a, const std::vector<double>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

/// Indices of the `count` last-finishing transfers, worst first.
std::vector<std::size_t> critical_transfers(const SystemModel& model,
                                            const Schedule& h,
                                            const MakespanReport& report,
                                            double bandwidth, std::size_t count) {
  std::vector<std::pair<double, std::size_t>> finishes;
  for (std::size_t u = 0; u < h.size(); ++u) {
    if (!h[u].is_transfer()) continue;
    finishes.emplace_back(
        report.start_times[u] +
            static_cast<double>(action_cost(model, h[u])) / bandwidth,
        u);
  }
  std::sort(finishes.begin(), finishes.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < finishes.size() && i < count; ++i) {
    out.push_back(finishes[i].second);
  }
  return out;
}

struct Candidate {
  Schedule schedule;
  MakespanReport report;
  std::vector<double> profile;
  Cost cost;
};

}  // namespace

DeadlineResult meet_deadline(const SystemModel& model, const ReplicationMatrix& x_old,
                             const ReplicationMatrix& x_new, Schedule start,
                             const DeadlineOptions& options) {
  RTSP_REQUIRE(options.deadline >= 0.0);
  {
    const auto v = Validator::validate(model, x_old, x_new, start);
    RTSP_REQUIRE_MSG(v.valid, "meet_deadline needs a valid starting schedule: "
                                  << v.to_string());
  }
  const double bw = options.execution.bandwidth;

  DeadlineResult best;
  best.schedule = std::move(start);
  best.report = simulate_makespan(model, x_old, best.schedule, options.execution);
  best.cost = schedule_cost(model, best.schedule);
  std::vector<double> best_profile =
      finish_profile(model, best.schedule, best.report, bw);

  for (std::size_t iter = 0;
       iter < options.max_iterations && best.report.makespan > options.deadline;
       ++iter) {
    std::optional<Candidate> adopted;
    auto consider = [&](Schedule cand) {
      if (!Validator::is_valid(model, x_old, x_new, cand)) return;
      MakespanReport rep = simulate_makespan(model, x_old, cand, options.execution);
      std::vector<double> profile = finish_profile(model, cand, rep, bw);
      const std::vector<double>& incumbent =
          adopted ? adopted->profile : best_profile;
      if (!lex_less(profile, incumbent)) return;
      const Cost cand_cost = schedule_cost(model, cand);
      adopted = Candidate{std::move(cand), std::move(rep), std::move(profile),
                          cand_cost};
    };

    for (std::size_t crit :
         critical_transfers(model, best.schedule, best.report, bw, 6)) {
      const Action critical = best.schedule[crit];

      // Family 1: alternative sources alive just before the transfer.
      const ExecutionState st =
          simulate_prefix_lenient(model, x_old, best.schedule, crit);
      for (ServerId s = 0; s < model.num_servers(); ++s) {
        if (s == critical.server || s == critical.source) continue;
        if (!st.holds(s, critical.object)) continue;
        Schedule cand = best.schedule;
        cand[crit].source = s;
        consider(std::move(cand));
      }

      // Family 2: hoist the transfer towards the front (a few target
      // positions), repairing capacity and re-sourcing it there.
      for (const std::size_t denom : {4u, 2u}) {
        const std::size_t to = crit / denom;
        if (to >= crit) continue;
        Schedule cand = best.schedule;
        move_action_earlier(cand, crit, to);
        {
          const ExecutionState at_to = simulate_prefix_lenient(model, x_old, cand, to);
          const auto nearest = model.nearest_replicator(
              critical.server, critical.object, at_to.placement());
          cand[to].source = nearest ? *nearest : kDummyServer;
        }
        const auto repair = pull_deletions_for_space(
            model, x_old, cand, to, crit, OrphanPolicy::NearestElseDummy);
        if (!repair.ok) continue;
        consider(std::move(cand));
      }
    }

    if (!adopted) break;  // no rewrite improves the finish profile
    best.schedule = std::move(adopted->schedule);
    best.report = std::move(adopted->report);
    best.cost = adopted->cost;
    best_profile = std::move(adopted->profile);
  }

  best.met = best.report.makespan <= options.deadline;
  return best;
}

}  // namespace rtsp
