// Parallel execution of an RTSP schedule and its makespan — the quantity the
// paper's future-work deadline variant would constrain.
//
// Model: a transfer of O_k from S_j to S_i occupies one "port" on both
// endpoints for s(O_k) * l_ij / bandwidth time units (so with bandwidth 1
// the makespan of a fully serial schedule equals its implementation cost);
// deletions are instantaneous; the dummy server has unlimited ports. An
// event-driven list scheduler starts any action whose dependencies are done,
// whose endpoints have a free port and whose destination has free space,
// breaking ties by original schedule position (which guarantees progress:
// the sequential order itself is always feasible).
#pragma once

#include "core/system.hpp"
#include "extension/dependency_graph.hpp"

namespace rtsp {

struct MakespanOptions {
  double bandwidth = 1.0;     ///< data units * cost units per time unit
  std::size_t ports = 1;      ///< concurrent transfers per server (>= 1)
};

struct MakespanReport {
  double makespan = 0.0;
  double serial_time = 0.0;        ///< sum of all transfer durations
  double speedup = 1.0;            ///< serial_time / makespan (1 if no work)
  std::size_t peak_parallelism = 0;
  /// Start time of every action in schedule order (deletions take 0 time).
  std::vector<double> start_times;
};

/// Simulates parallel execution of a valid schedule for (x_old -> ...).
/// RTSP_REQUIREs that the simulation completes (true for valid schedules).
MakespanReport simulate_makespan(const SystemModel& model,
                                 const ReplicationMatrix& x_old,
                                 const Schedule& schedule,
                                 const MakespanOptions& options = {});

}  // namespace rtsp
