#include "extension/phases.hpp"

#include <algorithm>
#include <sstream>

#include "core/cost_model.hpp"
#include "extension/dependency_graph.hpp"

namespace rtsp {

std::size_t PhasePlan::max_width() const {
  std::size_t w = 0;
  for (const auto& p : phases) w = std::max(w, p.size());
  return w;
}

Cost PhasePlan::bottleneck_cost(const SystemModel& model,
                                const Schedule& schedule) const {
  Cost total = 0;
  for (const auto& phase : phases) {
    Cost slowest = 0;
    for (std::size_t u : phase) {
      slowest = std::max(slowest, action_cost(model, schedule[u]));
    }
    total += slowest;
  }
  return total;
}

std::string PhasePlan::to_string(const Schedule& schedule) const {
  std::ostringstream os;
  for (std::size_t r = 0; r < phases.size(); ++r) {
    os << "round " << r << ":";
    for (std::size_t u : phases[r]) os << "  " << schedule[u].to_string();
    os << '\n';
  }
  return os.str();
}

PhasePlan phase_partition(const SystemModel& model, const ReplicationMatrix& x_old,
                          const Schedule& schedule, std::size_t ports) {
  RTSP_REQUIRE(ports >= 1);
  const std::size_t n = schedule.size();
  const DependencyGraph dag(schedule);

  std::vector<std::size_t> deps_left(n);
  for (std::size_t u = 0; u < n; ++u) deps_left[u] = dag.dependencies_of(u).size();

  // Per-server storage-order queues (see header, rule b).
  std::vector<std::vector<std::size_t>> server_queue(model.num_servers());
  for (std::size_t u = 0; u < n; ++u) server_queue[schedule[u].server].push_back(u);
  std::vector<std::size_t> cursor(model.num_servers(), 0);

  std::vector<Size> used(model.num_servers());
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    used[i] = x_old.used_storage(i, model.objects());
  }

  std::vector<bool> done(n, false);
  std::size_t finished = 0;

  PhasePlan plan;
  while (finished < n) {
    std::vector<std::size_t> round;
    std::vector<std::size_t> ports_used(model.num_servers(), 0);
    bool progress = true;
    while (progress) {
      progress = false;
      for (ServerId s = 0; s < model.num_servers(); ++s) {
        if (cursor[s] >= server_queue[s].size()) continue;
        const std::size_t u = server_queue[s][cursor[s]];
        // Dependencies must have completed in an *earlier* round: an action
        // already placed in this round is not yet usable as a source.
        bool ready = deps_left[u] == 0;
        if (ready) {
          for (std::size_t d : dag.dependencies_of(u)) {
            if (std::find(round.begin(), round.end(), d) != round.end()) {
              ready = false;
              break;
            }
          }
        }
        if (!ready) continue;
        const Action& a = schedule[u];
        if (a.is_delete()) {
          used[s] -= model.object_size(a.object);
        } else {
          if (model.capacity(s) - used[s] < model.object_size(a.object)) continue;
          if (ports_used[s] >= ports) continue;
          if (!is_dummy(a.source) && ports_used[a.source] >= ports) continue;
          used[s] += model.object_size(a.object);
          ++ports_used[s];
          if (!is_dummy(a.source)) ++ports_used[a.source];
        }
        ++cursor[s];
        round.push_back(u);
        progress = true;
      }
    }
    RTSP_REQUIRE_MSG(!round.empty(),
                     "phase partition stuck — schedule is not valid");
    std::sort(round.begin(), round.end());
    for (std::size_t u : round) {
      done[u] = true;
      ++finished;
      for (std::size_t w : dag.dependents_of(u)) --deps_left[w];
    }
    plan.phases.push_back(std::move(round));
  }
  return plan;
}

}  // namespace rtsp
