// Sharded parallel builder passes: RDFP and GSDFP (registry tokens).
//
// The serial builders interleave two very different kinds of work: cheap,
// rng-driven ordering decisions (which replica to delete or create next) and
// the expensive nearest-replicator query that picks each transfer's source.
// The key structural fact that makes them parallelizable without changing a
// single output bit is that in RDF and GSDF the *action order* is a pure
// function of the rng — no ordering decision ever reads the evolving
// placement — while a transfer's source depends only on the placement row of
// its own object, which in turn is mutated only by that object's own earlier
// actions.
//
// So the pass splits into three phases:
//   1. skeleton (serial): replay the builder's exact rng consumption to fix
//      the full action sequence, with transfer sources left unresolved;
//   2. resolve (parallel): partition the skeleton's positions by object and
//      replay each object's private action subsequence on a worker thread,
//      computing every source as the lexicographic (link cost, index) argmin
//      over that object's current replicators — the same argmin the serial
//      nearest_replicator query computes;
//   3. assemble (serial): apply the fully resolved actions in skeleton order
//      through the shared apply_and_push, which re-validates capacity and
//      emits provenance exactly like the serial builder.
//
// Results are therefore bit-identical to RDF/GSDF for every (instance, seed)
// pair; the merge order is the skeleton order, fixed before any thread runs.
// AR and GOLCF have no sharded variant: their ordering decisions read global
// capacity / benefit state, so their action sequence is not rng-only.
#pragma once

#include <cstddef>

#include "heuristics/scheduler.hpp"

namespace rtsp {

struct ShardedBuildOptions {
  /// Worker threads for the resolve phase; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Below this many transfers the resolve phase runs inline — spinning up
  /// a pool costs more than the work. Output is identical either way.
  std::size_t min_transfers_parallel = 4096;
};

/// RDF with the transfer-source resolution sharded by object. Schedules are
/// bit-identical to RdfBuilder for the same rng state.
class ShardedRdfBuilder final : public ScheduleBuilder {
 public:
  explicit ShardedRdfBuilder(ShardedBuildOptions options = {})
      : options_(options) {}
  std::string name() const override { return "RDFP"; }
  Schedule build(const SystemModel& model, const ReplicationMatrix& x_old,
                 const ReplicationMatrix& x_new, Rng& rng) const override;

 private:
  ShardedBuildOptions options_;
};

/// GSDF with the transfer-source resolution sharded by object. Schedules are
/// bit-identical to GsdfBuilder for the same rng state.
class ShardedGsdfBuilder final : public ScheduleBuilder {
 public:
  explicit ShardedGsdfBuilder(ShardedBuildOptions options = {})
      : options_(options) {}
  std::string name() const override { return "GSDFP"; }
  Schedule build(const SystemModel& model, const ReplicationMatrix& x_old,
                 const ReplicationMatrix& x_new, Rng& rng) const override;

 private:
  ShardedBuildOptions options_;
};

}  // namespace rtsp
