#include "heuristics/surgery.hpp"

#include <algorithm>

namespace rtsp {

void move_action_earlier(Schedule& h, std::size_t from, std::size_t to,
                         EditWindow* touched) {
  RTSP_REQUIRE(from < h.size());
  RTSP_REQUIRE(to <= from);
  if (to == from) return;
  const Action a = h[from];
  auto& v = h.actions();
  v.erase(v.begin() + static_cast<std::ptrdiff_t>(from));
  v.insert(v.begin() + static_cast<std::ptrdiff_t>(to), a);
  if (touched) touched->note_range(to, from + 1);
}

ExecutionState simulate_prefix_lenient(const SystemModel& model,
                                       const ReplicationMatrix& x_old,
                                       const Schedule& h, std::size_t pos) {
  RTSP_REQUIRE(pos <= h.size());
  ExecutionState state(model, x_old);
  for (std::size_t u = 0; u < pos; ++u) state.apply_lenient(h[u]);
  return state;
}

Size occupancy_before(const SystemModel& model, const ReplicationMatrix& x_old,
                      const Schedule& h, std::size_t pos, ServerId i) {
  RTSP_REQUIRE(pos <= h.size());
  // Track only the bits of server i: cheap and immune to unrelated
  // invalidity elsewhere in the candidate.
  std::vector<bool> held(model.num_objects());
  Size used = 0;
  for (ObjectId k : x_old.objects_on(i)) {
    held[k] = true;
    used += model.object_size(k);
  }
  for (std::size_t u = 0; u < pos; ++u) {
    const Action& a = h[u];
    if (a.server != i) continue;
    if (a.is_transfer() && !held[a.object]) {
      held[a.object] = true;
      used += model.object_size(a.object);
    } else if (a.is_delete() && held[a.object]) {
      held[a.object] = false;
      used -= model.object_size(a.object);
    }
  }
  return used;
}

std::size_t find_preceding_deletion(const Schedule& h, std::size_t pos, ObjectId object) {
  RTSP_REQUIRE(pos <= h.size());
  for (std::size_t p = pos; p > 0; --p) {
    const Action& a = h[p - 1];
    if (a.is_delete() && a.object == object) return p - 1;
  }
  return npos;
}

namespace {

/// Positions in (t_pos, deletion_pos) of transfers that read the replica a
/// pulled deletion would destroy.
std::vector<std::size_t> dependent_transfers(const Schedule& h, std::size_t t_pos,
                                             std::size_t deletion_pos, ServerId server,
                                             ObjectId object) {
  std::vector<std::size_t> deps;
  for (std::size_t q = t_pos + 1; q < deletion_pos; ++q) {
    const Action& a = h[q];
    if (a.is_transfer() && !is_dummy(a.source) && a.source == server &&
        a.object == object) {
      deps.push_back(q);
    }
  }
  return deps;
}

}  // namespace

SpaceRepairResult pull_deletions_for_space(const SystemModel& model,
                                           const ReplicationMatrix& x_old, Schedule& h,
                                           std::size_t t_pos, std::size_t limit,
                                           OrphanPolicy policy, EditWindow* touched,
                                           const ExecutionState* state_at_t) {
  RTSP_REQUIRE(t_pos < h.size());
  RTSP_REQUIRE(limit < h.size() && limit >= t_pos);
  RTSP_REQUIRE(h[t_pos].is_transfer());
  const ServerId dest = h[t_pos].server;
  const ObjectId object = h[t_pos].object;
  const Size needed = model.object_size(object);
  const std::size_t t_orig = t_pos;

  SpaceRepairResult result;

  // Holdings and occupancy of `dest` just before t_pos under lenient
  // semantics, computed once and maintained incrementally as deletions are
  // pulled (every pull of a held object frees its size; pulls of objects the
  // destination does not hold are lenient no-ops).
  std::vector<bool> held(model.num_objects(), false);
  Size used = 0;
  if (state_at_t) {
    for (ObjectId k = 0; k < model.num_objects(); ++k) {
      held[k] = state_at_t->holds(dest, k);
    }
    used = state_at_t->used(dest);
  } else {
    for (ObjectId k : x_old.objects_on(dest)) {
      held[k] = true;
      used += model.object_size(k);
    }
    for (std::size_t u = 0; u < t_pos; ++u) {
      const Action& a = h[u];
      if (a.server != dest) continue;
      if (a.is_transfer() && !held[a.object]) {
        held[a.object] = true;
        used += model.object_size(a.object);
      } else if (a.is_delete() && held[a.object]) {
        held[a.object] = false;
        used -= model.object_size(a.object);
      }
    }
  }

  // Phase 1 moves only standalone deletions (paper H1 case ii); phase 2 also
  // moves deletions whose replica is still read in between, re-sourcing the
  // readers (case iii).
  for (int phase = 0; phase < 2; ++phase) {
    while (model.capacity(dest) - used < needed) {
      // Next eligible deletion on the destination within (t_pos, limit].
      std::size_t p = npos;
      std::vector<std::size_t> deps;
      for (std::size_t q = t_pos + 1; q <= limit; ++q) {
        const Action& a = h[q];
        if (!a.is_delete() || a.server != dest || a.object == object) continue;
        deps = dependent_transfers(h, t_pos, q, dest, a.object);
        if (phase == 0 && !deps.empty()) continue;  // not standalone yet
        p = q;
        break;
      }
      if (p == npos) break;  // phase exhausted

      // Re-source the readers first (their positions are still valid).
      for (std::size_t q : deps) {
        Action& reader = h[q];
        ServerId new_src = kDummyServer;
        if (policy == OrphanPolicy::NearestElseDummy) {
          ExecutionState st =
              state_at_t ? *state_at_t
                         : simulate_prefix_lenient(model, x_old, h, t_orig);
          for (std::size_t u = t_orig; u < q; ++u) st.apply_lenient(h[u]);
          // The doomed replica is about to move before t_pos, so exclude it.
          ServerId best = kDummyServer;
          for (ServerId s : model.neighbors_by_cost(reader.server)) {
            if (s == dest) continue;
            if (st.holds(s, reader.object)) {
              best = s;
              break;
            }
          }
          new_src = best;
        }
        reader.source = new_src;
        if (touched) touched->note(q);
        if (is_dummy(new_src)) result.new_dummies.push_back(reader);
      }
      const ObjectId pulled = h[p].object;
      move_action_earlier(h, p, t_pos, touched);
      ++t_pos;  // the transfer shifted one slot right
      if (held[pulled]) {
        held[pulled] = false;
        used -= model.object_size(pulled);
      }
    }
    if (model.capacity(dest) - used >= needed) {
      result.ok = true;
      break;
    }
  }
  if (touched && t_pos != t_orig) touched->note_range(t_orig, t_pos + 1);
  result.t_pos = t_pos;
  return result;
}

}  // namespace rtsp
