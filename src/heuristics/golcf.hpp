// GOLCF — Greedy Object Lowest Cost First (Sec. 4.2, originally [14]).
//
// Objects are processed one at a time (random order). For the current object
// the destination with the cheapest current-source link is served next, so a
// freshly created replica immediately becomes a source for the remaining
// destinations. Space is made by deleting superfluous replicas in increasing
// benefit order, where the benefit B_ik of a superfluous replica (eq. 4) is
// the extra cost pending destinations whose nearest source is S_i would pay
// through their second-nearest source (dummy if none) if the replica
// disappeared.
#pragma once

#include "core/delta.hpp"
#include "core/state.hpp"
#include "heuristics/scheduler.hpp"

namespace rtsp {

class GolcfBuilder final : public ScheduleBuilder {
 public:
  std::string name() const override { return "GOLCF"; }
  Schedule build(const SystemModel& model, const ReplicationMatrix& x_old,
                 const ReplicationMatrix& x_new, Rng& rng) const override;
};

/// Equation (4): benefit of the superfluous replica of `object` on `holder`
/// given the still-pending destinations of that object. Exposed for tests.
Cost golcf_benefit(const ExecutionState& state, ServerId holder, ObjectId object,
                   const std::vector<ServerId>& pending_destinations);

}  // namespace rtsp
