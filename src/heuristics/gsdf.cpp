#include "heuristics/gsdf.hpp"

#include <numeric>

#include "core/delta.hpp"
#include "core/feasibility.hpp"
#include "heuristics/builder_common.hpp"

namespace rtsp {

Schedule GsdfBuilder::build(const SystemModel& model, const ReplicationMatrix& x_old,
                            const ReplicationMatrix& x_new, Rng& rng) const {
  RTSP_REQUIRE_MSG(storage_feasible(model, x_new), "X_new exceeds server capacities");
  const prov::StageScope stage(prov::StageKind::Builder, name());
  const PlacementDelta delta(x_old, x_new);
  ExecutionState state(model, x_old);
  Schedule h;

  std::vector<ServerId> order(model.num_servers());
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);

  for (ServerId i : order) {
    std::vector<Replica> deletions = delta.superfluous_on(i);
    rng.shuffle(deletions);
    for (const Replica& r : deletions) {
      apply_and_push(state, h, Action::remove(r.server, r.object));
    }
    std::vector<Replica> transfers = delta.outstanding_on(i);
    rng.shuffle(transfers);
    for (const Replica& r : transfers) {
      apply_and_push(state, h, nearest_transfer(state, r.server, r.object));
    }
  }
  return h;
}

}  // namespace rtsp
