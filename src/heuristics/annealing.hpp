// Simulated-annealing schedule improver — an extension baseline beyond the
// paper, used to sanity-check how much headroom the deterministic rewrites
// (H1/H2/OP1) leave on the table.
//
// Because action costs are position-independent (Sec. 3.2), pure
// reorderings are cost-neutral; cost only changes through transfer sources.
// The move set therefore couples relocation with re-sourcing:
//   * relocate-and-re-source: move a transfer earlier and source it from
//     the cheapest replicator at the new position;
//   * re-source in place: switch a transfer to the cheapest source
//     available at its position;
//   * adjacent swap: cost-neutral diversification that unlocks later moves.
// Proposals that fail full validation are rejected, so every intermediate
// state is a valid schedule; the best state seen (including the input) is
// returned, making the improver monotone like OP1.
#pragma once

#include "heuristics/scheduler.hpp"

namespace rtsp {

struct AnnealingOptions {
  std::size_t iterations = 5000;
  /// T0 = initial_temperature_fraction * cost(input); 0 disables uphill
  /// moves entirely (pure stochastic hill climbing).
  double initial_temperature_fraction = 0.02;
  /// Final temperature as a fraction of T0 (geometric cooling in between).
  double final_temperature_ratio = 1e-3;
};

class AnnealingImprover final : public ScheduleImprover {
 public:
  explicit AnnealingImprover(AnnealingOptions options = {}) : options_(options) {}
  std::string name() const override { return "SA"; }
  Schedule improve(const SystemModel& model, const ReplicationMatrix& x_old,
                   const ReplicationMatrix& x_new, Schedule schedule,
                   Rng& rng) const override;

  /// Budget-aware chain entry: same loop as improve(), but honors the
  /// evaluator's WorkMeter (one iteration ~ schedule-length ticks) so
  /// anytime runs truncate the annealing walk at a deterministic iteration.
  void improve_incremental(IncrementalEvaluator& eval, Rng& rng) const override;

 private:
  Schedule anneal(const SystemModel& model, const ReplicationMatrix& x_old,
                  const ReplicationMatrix& x_new, Schedule schedule, Rng& rng,
                  WorkMeter* meter) const;

  AnnealingOptions options_;
};

}  // namespace rtsp
