#include "heuristics/sharded_build.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "core/delta.hpp"
#include "core/feasibility.hpp"
#include "heuristics/builder_common.hpp"
#include "support/thread_pool.hpp"

namespace rtsp {

namespace {

constexpr std::uint32_t kNoTask = std::numeric_limits<std::uint32_t>::max();

/// One object's slice of the skeleton: the positions (ascending) of every
/// action touching it. Objects without a transfer need no replay at all —
/// deletions carry no source to resolve.
struct ObjectTask {
  ObjectId object = 0;
  bool has_transfer = false;
  std::vector<std::uint32_t> positions;
};

/// Groups skeleton positions by object, in first-touch order.
std::vector<ObjectTask> partition_by_object(const std::vector<Action>& skeleton,
                                            std::size_t num_objects) {
  RTSP_REQUIRE(skeleton.size() < kNoTask);
  std::vector<std::uint32_t> task_of(num_objects, kNoTask);
  std::vector<ObjectTask> tasks;
  for (std::uint32_t pos = 0; pos < skeleton.size(); ++pos) {
    const Action& a = skeleton[pos];
    std::uint32_t& t = task_of[a.object];
    if (t == kNoTask) {
      t = static_cast<std::uint32_t>(tasks.size());
      tasks.push_back(ObjectTask{a.object, false, {}});
    }
    tasks[t].has_transfer |= a.is_transfer();
    tasks[t].positions.push_back(pos);
  }
  return tasks;
}

/// Replays one object's action subsequence against its private replicator
/// set and writes the resolved source of each transfer into `sources`.
///
/// The argmin below is the lexicographic (link cost, server index) minimum —
/// the exact value SystemModel::nearest_replicator returns whether it walks
/// the sorted top-K table (first hit in (cost, index) order) or min-scans a
/// sparse replica set; the argmin of a total order does not depend on the
/// order candidates are visited in.
void resolve_object(const SystemModel& model, const ReplicationMatrix& x_old,
                    const std::vector<Action>& skeleton, const ObjectTask& task,
                    std::vector<ServerId>& sources) {
  if (!task.has_transfer) return;
  const CostMatrix& costs = model.costs();
  std::vector<ServerId> reps;
  x_old.for_each_replicator(task.object, [&](ServerId j) { reps.push_back(j); });
  for (const std::uint32_t pos : task.positions) {
    const Action& a = skeleton[pos];
    if (a.is_delete()) {
      reps.erase(std::find(reps.begin(), reps.end(), a.server));
      continue;
    }
    ServerId best = kDummyServer;
    LinkCost best_cost = 0;
    for (const ServerId j : reps) {
      if (j == a.server) continue;
      const LinkCost c = costs.at(a.server, j);
      if (is_dummy(best) || c < best_cost || (c == best_cost && j < best)) {
        best = j;
        best_cost = c;
      }
    }
    sources[pos] = best;
    reps.push_back(a.server);
  }
}

/// Phases 2+3: resolves transfer sources (in parallel when the instance is
/// big enough to pay for the pool) and applies the skeleton in order through
/// the same apply_and_push path the serial builders use, so capacity checks
/// and provenance notes happen identically.
Schedule resolve_and_assemble(const SystemModel& model,
                              const ReplicationMatrix& x_old,
                              const std::vector<Action>& skeleton,
                              const ShardedBuildOptions& options) {
  const std::vector<ObjectTask> tasks =
      partition_by_object(skeleton, model.num_objects());
  std::vector<ServerId> sources(skeleton.size(), kDummyServer);

  std::size_t num_transfers = 0;
  for (const Action& a : skeleton) num_transfers += a.is_transfer();
  const bool parallel =
      num_transfers >= options.min_transfers_parallel && options.threads != 1;
  const auto body = [&](std::size_t t) {
    resolve_object(model, x_old, skeleton, tasks[t], sources);
  };
  if (parallel) {
    parallel_for(options.threads, tasks.size(), body);
  } else {
    for (std::size_t t = 0; t < tasks.size(); ++t) body(t);
  }

  ExecutionState state(model, x_old);
  Schedule h;
  h.reserve(skeleton.size());
  for (std::size_t pos = 0; pos < skeleton.size(); ++pos) {
    const Action& a = skeleton[pos];
    apply_and_push(state, h,
                   a.is_transfer()
                       ? Action::transfer(a.server, a.object, sources[pos])
                       : a);
  }
  return h;
}

}  // namespace

Schedule ShardedRdfBuilder::build(const SystemModel& model,
                                  const ReplicationMatrix& x_old,
                                  const ReplicationMatrix& x_new, Rng& rng) const {
  RTSP_REQUIRE_MSG(storage_feasible(model, x_new), "X_new exceeds server capacities");
  const prov::StageScope stage(prov::StageKind::Builder, name());
  const PlacementDelta delta(x_old, x_new);

  // Phase 1 — skeleton: consumes the rng exactly like RdfBuilder::build
  // (shuffle deletions, shuffle transfers), so the action order matches.
  std::vector<Action> skeleton;
  skeleton.reserve(delta.superfluous().size() + delta.outstanding().size());
  std::vector<Replica> deletions = delta.superfluous();
  rng.shuffle(deletions);
  for (const Replica& r : deletions) {
    skeleton.push_back(Action::remove(r.server, r.object));
  }
  std::vector<Replica> transfers = delta.outstanding();
  rng.shuffle(transfers);
  for (const Replica& r : transfers) {
    skeleton.push_back(Action::transfer(r.server, r.object, kDummyServer));
  }

  return resolve_and_assemble(model, x_old, skeleton, options_);
}

Schedule ShardedGsdfBuilder::build(const SystemModel& model,
                                   const ReplicationMatrix& x_old,
                                   const ReplicationMatrix& x_new, Rng& rng) const {
  RTSP_REQUIRE_MSG(storage_feasible(model, x_new), "X_new exceeds server capacities");
  const prov::StageScope stage(prov::StageKind::Builder, name());
  const PlacementDelta delta(x_old, x_new);

  // Phase 1 — skeleton: consumes the rng exactly like GsdfBuilder::build
  // (shuffle the server order, then per server shuffle its deletions and its
  // transfers). None of these draws read the evolving placement.
  std::vector<Action> skeleton;
  std::vector<ServerId> order(model.num_servers());
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  for (const ServerId i : order) {
    std::vector<Replica> deletions = delta.superfluous_on(i);
    rng.shuffle(deletions);
    for (const Replica& r : deletions) {
      skeleton.push_back(Action::remove(r.server, r.object));
    }
    std::vector<Replica> transfers = delta.outstanding_on(i);
    rng.shuffle(transfers);
    for (const Replica& r : transfers) {
      skeleton.push_back(Action::transfer(r.server, r.object, kDummyServer));
    }
  }

  return resolve_and_assemble(model, x_old, skeleton, options_);
}

}  // namespace rtsp
