// String-keyed factory for algorithm pipelines, e.g. "GOLCF+H1+H2+OP1".
//
// Builders: AR, GOLCF, RDF, GSDF. Improvers: H1, H2, OP1 (the paper's),
// plus SA (simulated-annealing baseline) and H1H2FIX (H1 and H2 alternated
// to a fixpoint). Components compose in any order, any subset; names are
// case-insensitive.
#pragma once

#include <string>
#include <vector>

#include "heuristics/pipeline.hpp"

namespace rtsp {

/// Parses "BUILDER[+IMPROVER...]" into a Pipeline; throws
/// std::invalid_argument on unknown component names.
Pipeline make_pipeline(const std::string& spec);

/// Names accepted as the first / subsequent components of a spec.
std::vector<std::string> known_builders();
std::vector<std::string> known_improvers();

}  // namespace rtsp
