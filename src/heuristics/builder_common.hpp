// Shared machinery for schedule builders and improvers.
#pragma once

#include <optional>
#include <vector>

#include "core/delta.hpp"
#include "core/schedule.hpp"
#include "core/state.hpp"
#include "obs/provenance.hpp"
#include "support/rng.hpp"

namespace rtsp {

/// Tracks which superfluous replicas are still present as a builder runs,
/// grouped by server for O(1) "what can I delete here" queries.
class SuperfluousTracker {
 public:
  SuperfluousTracker(std::size_t num_servers, const PlacementDelta& delta);

  /// Superfluous replicas still present on server i (unspecified order,
  /// stable between mutations).
  const std::vector<ObjectId>& on(ServerId i) const { return per_server_[i]; }

  /// Removes (i, k); RTSP_REQUIREs that it was present.
  void remove(ServerId i, ObjectId k);

  /// All remaining superfluous replicas, grouped by server.
  std::vector<Replica> remaining() const;

  std::size_t total_remaining() const { return total_; }

 private:
  std::vector<std::vector<ObjectId>> per_server_;
  std::size_t total_ = 0;
};

/// Transfer of k to i from its cheapest current replicator (dummy if none).
Action nearest_transfer(const ExecutionState& state, ServerId i, ObjectId k);

/// Applies `a` and appends it to `schedule` — the single append point for
/// every builder, so provenance recording (stage attribution plus the
/// deadlock witness for dummy transfers) sees each emitted action exactly
/// once. Behaviour is identical with recording on or off.
void apply_and_push(ExecutionState& state, Schedule& schedule, const Action& a);

/// Deletes random superfluous replicas on `i` (updating state, tracker and
/// schedule) until `i` can host object k. RTSP_REQUIREs success — guaranteed
/// whenever X_new is storage feasible and only superfluous replicas remain.
void make_space_random(ExecutionState& state, SuperfluousTracker& tracker,
                       Schedule& schedule, ServerId i, ObjectId k, Rng& rng);

}  // namespace rtsp
