// GSDF — Grouped by Server Deletions First (Sec. 4.1).
//
// Visits servers in random order; for each, deletes its superfluous replicas
// and immediately fetches its outstanding replicas, so replicas deleted for
// other servers cannot yet have starved its sources. The first server visited
// never needs a dummy transfer.
#pragma once

#include "heuristics/scheduler.hpp"

namespace rtsp {

class GsdfBuilder final : public ScheduleBuilder {
 public:
  std::string name() const override { return "GSDF"; }
  Schedule build(const SystemModel& model, const ReplicationMatrix& x_old,
                 const ReplicationMatrix& x_new, Rng& rng) const override;
};

}  // namespace rtsp
