// Schedule surgery: the low-level rewrites shared by the improvement
// heuristics H1, H2 and OP1 — moving actions earlier, approximating
// intermediate states, and pulling a destination's deletions forward to
// make room for a relocated transfer.
//
// All functions mutate candidate schedules that may be transiently invalid;
// callers gate acceptance on the full Validator (or, on hot paths, the
// incremental engine in core/incremental.hpp). Helpers report the positions
// they touch through an EditWindow so callers can hand the incremental
// engine a tight diff window instead of letting it rescan the schedule.
#pragma once

#include <cstddef>
#include <vector>

#include "core/schedule.hpp"
#include "core/state.hpp"

namespace rtsp {

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// Accumulates the half-open range [lo, hi) of schedule positions touched by
/// a sequence of surgery operations. Positions are in the schedule's current
/// coordinates; all helpers here preserve the schedule's length, so noted
/// positions stay meaningful across calls. Callers that insert or erase
/// actions themselves must translate accordingly.
struct EditWindow {
  std::size_t lo = npos;
  std::size_t hi = 0;

  void note(std::size_t pos) { note_range(pos, pos + 1); }
  void note_range(std::size_t first, std::size_t last) {
    if (first < lo) lo = first;
    if (last > hi) hi = last;
  }
  bool empty() const { return lo == npos; }
};

/// Moves the action at index `from` to index `to` (to <= from); actions in
/// [to, from) shift one slot right. Notes [to, from+1) in `touched`.
void move_action_earlier(Schedule& h, std::size_t from, std::size_t to,
                         EditWindow* touched = nullptr);

/// Lenient execution state just before position `pos`, starting from x_old.
ExecutionState simulate_prefix_lenient(const SystemModel& model,
                                       const ReplicationMatrix& x_old,
                                       const Schedule& h, std::size_t pos);

/// Storage used on server `i` just before position `pos` under lenient
/// semantics. O(pos).
Size occupancy_before(const SystemModel& model, const ReplicationMatrix& x_old,
                      const Schedule& h, std::size_t pos, ServerId i);

/// How transfers orphaned by a pulled-forward deletion are re-sourced.
enum class OrphanPolicy {
  Dummy,             ///< H1: treat as new dummy transfers (paper's H'' trick)
  NearestElseDummy,  ///< OP1 case (iii): nearest replicator at that position
};

struct SpaceRepairResult {
  bool ok = false;        ///< destination can now host the transfer's object
  std::size_t t_pos = 0;  ///< final position of the transfer
  /// Transfers that were re-sourced to the dummy during the repair
  /// (signatures, not positions — positions shift under later surgery).
  std::vector<Action> new_dummies;
};

/// Makes room for the transfer at `t_pos` by moving deletions on its
/// destination server from positions in (t_pos, limit] to immediately before
/// it. Standalone deletions (no transfer in between reads the doomed
/// replica) are moved first, in schedule order (H1 case ii); if space is
/// still short, remaining deletions are moved and the transfers that read
/// them are re-sourced per `policy` (H1 case iii / OP1 cases iii-iv).
/// Deletions of the transfer's own object are never touched. All mutations
/// stay within [t_pos, limit]; indices outside are unaffected.
///
/// `state_at_t`, when given, must be the lenient execution state of
/// h[0..t_pos) — callers whose prefix still matches the improver's base
/// schedule obtain it from the incremental engine's prefix cache in
/// O(sqrt(L)) instead of this function's O(t_pos) rescan. Touched positions
/// are noted in `touched` (the relocated transfer's final slot is
/// result.t_pos; its drift is noted here too).
SpaceRepairResult pull_deletions_for_space(const SystemModel& model,
                                           const ReplicationMatrix& x_old, Schedule& h,
                                           std::size_t t_pos, std::size_t limit,
                                           OrphanPolicy policy,
                                           EditWindow* touched = nullptr,
                                           const ExecutionState* state_at_t = nullptr);

/// Index of the last deletion of `object` strictly before `pos`, or npos.
std::size_t find_preceding_deletion(const Schedule& h, std::size_t pos, ObjectId object);

}  // namespace rtsp
