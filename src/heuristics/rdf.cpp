#include "heuristics/rdf.hpp"

#include "core/delta.hpp"
#include "core/feasibility.hpp"
#include "heuristics/builder_common.hpp"

namespace rtsp {

Schedule RdfBuilder::build(const SystemModel& model, const ReplicationMatrix& x_old,
                           const ReplicationMatrix& x_new, Rng& rng) const {
  RTSP_REQUIRE_MSG(storage_feasible(model, x_new), "X_new exceeds server capacities");
  const prov::StageScope stage(prov::StageKind::Builder, name());
  const PlacementDelta delta(x_old, x_new);
  ExecutionState state(model, x_old);
  Schedule h;

  std::vector<Replica> deletions = delta.superfluous();
  rng.shuffle(deletions);
  for (const Replica& r : deletions) {
    apply_and_push(state, h, Action::remove(r.server, r.object));
  }

  std::vector<Replica> transfers = delta.outstanding();
  rng.shuffle(transfers);
  for (const Replica& r : transfers) {
    apply_and_push(state, h, nearest_transfer(state, r.server, r.object));
  }
  return h;
}

}  // namespace rtsp
