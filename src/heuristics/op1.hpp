// OP1 — reorder same-object transfers to cut implementation cost (Sec. 4.2,
// originally [14]).
//
// For every ordered pair of transfers of one object (T_i'kj' ... T_ikj), OP1
// considers moving the later transfer (with the deletion run that enables
// it) before the earlier one, re-sourcing it to the nearest replicator at
// that point, and re-sourcing every subsequent transfer of the object that
// gets cheaper from the newly early replica (this also converts later dummy
// transfers of the object into proper ones — the paper's "side-effect").
// The paper's validity cases are realized as: (ii) candidates that cannot be
// repaired are rejected by the validator; (iii) transfers orphaned by pulled
// deletions are re-sourced to their nearest alternative; (iv) capacity at
// the new position is repaired by pulling the destination's deletions
// forward. A candidate is adopted iff it validates and its exact total cost
// is strictly lower — the paper's "benefit outweighs implementation cost
// plus all penalties" computed exactly. After each adopted change the scan
// restarts (paper); a cheap benefit/cost pre-screen keeps restarts fast.
#pragma once

#include "heuristics/scheduler.hpp"

namespace rtsp {

struct Op1Options {
  enum class Restart {
    FromStart,  ///< paper behaviour: rescan from the beginning after a change
    Continue,   ///< keep scanning forward; cheaper, benchmarked in ablation
  };
  Restart restart = Restart::FromStart;
  /// Skip pairs whose optimistic cost estimate shows no improvement.
  bool prescreen = true;
  /// Safety cap on adopted changes (0 = unlimited).
  std::size_t max_changes = 0;
  /// Screen candidate pairs for several objects concurrently (prescreen +
  /// candidate build + incremental validation per worker), adopting the
  /// first improving candidate in deterministic scan order — output is
  /// bitwise identical to the sequential run.
  bool parallel_screen = false;
  /// Worker count for parallel_screen (0 = hardware concurrency).
  std::size_t threads = 0;
};

class Op1Improver final : public ScheduleImprover {
 public:
  explicit Op1Improver(Op1Options options = {}) : options_(options) {}
  std::string name() const override { return "OP1"; }
  Schedule improve(const SystemModel& model, const ReplicationMatrix& x_old,
                   const ReplicationMatrix& x_new, Schedule schedule,
                   Rng& rng) const override;
  void improve_incremental(IncrementalEvaluator& eval, Rng& rng) const override;

 private:
  Op1Options options_;
};

}  // namespace rtsp
