#include "heuristics/ar.hpp"

#include "core/delta.hpp"
#include "core/feasibility.hpp"
#include "heuristics/builder_common.hpp"

namespace rtsp {

Schedule ArBuilder::build(const SystemModel& model, const ReplicationMatrix& x_old,
                          const ReplicationMatrix& x_new, Rng& rng) const {
  RTSP_REQUIRE_MSG(storage_feasible(model, x_new), "X_new exceeds server capacities");
  const prov::StageScope stage(prov::StageKind::Builder, name());
  const PlacementDelta delta(x_old, x_new);
  ExecutionState state(model, x_old);
  SuperfluousTracker tracker(model.num_servers(), delta);
  Schedule h;

  std::vector<Replica> transfers = delta.outstanding();
  rng.shuffle(transfers);
  for (const Replica& r : transfers) {
    make_space_random(state, tracker, h, r.server, r.object, rng);
    apply_and_push(state, h, nearest_transfer(state, r.server, r.object));
  }

  std::vector<Replica> leftovers = tracker.remaining();
  rng.shuffle(leftovers);
  for (const Replica& r : leftovers) {
    apply_and_push(state, h, Action::remove(r.server, r.object));
  }
  return h;
}

}  // namespace rtsp
