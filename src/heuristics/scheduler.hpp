// Algorithm interfaces: builders create a schedule from (X_old, X_new);
// improvers rewrite an existing schedule (Sec. 4's two heuristic families).
#pragma once

#include <memory>
#include <string>

#include "core/incremental.hpp"
#include "core/replication.hpp"
#include "core/schedule.hpp"
#include "core/system.hpp"
#include "obs/provenance.hpp"
#include "support/rng.hpp"

namespace rtsp {

/// Builds a valid schedule for (X_old, X_new) from scratch. Randomized
/// builders draw from `rng`; deterministic ones ignore it.
class ScheduleBuilder {
 public:
  virtual ~ScheduleBuilder() = default;
  virtual std::string name() const = 0;
  virtual Schedule build(const SystemModel& model, const ReplicationMatrix& x_old,
                         const ReplicationMatrix& x_new, Rng& rng) const = 0;
};

/// Rewrites a schedule that is valid w.r.t. (X_old, X_new) into another valid
/// schedule; implementations guarantee they never make their target metric
/// worse (dummy transfers for H1/H2, implementation cost for OP1).
class ScheduleImprover {
 public:
  virtual ~ScheduleImprover() = default;
  virtual std::string name() const = 0;
  virtual Schedule improve(const SystemModel& model, const ReplicationMatrix& x_old,
                           const ReplicationMatrix& x_new, Schedule schedule,
                           Rng& rng) const = 0;

  /// Improves the schedule held by `eval` in place, reusing its prefix
  /// checkpoints and cost/dummy summary. Chains (Pipeline, FixpointImprover)
  /// call this so consecutive improvers share one engine instead of each
  /// re-validating the schedule from scratch. The default delegates to
  /// improve() and rebuilds the engine; H1/H2/OP1 override it natively.
  virtual void improve_incremental(IncrementalEvaluator& eval, Rng& rng) const {
    // The stage frame covers the reset too, so the provenance recorder
    // attributes the full-schedule diff to this improver.
    const prov::StageScope stage(prov::StageKind::Improver, name());
    eval.reset(improve(eval.model(), eval.x_old(), eval.x_new(),
                       eval.take_schedule(), rng));
  }
};

using BuilderPtr = std::shared_ptr<const ScheduleBuilder>;
using ImproverPtr = std::shared_ptr<const ScheduleImprover>;

}  // namespace rtsp
