#include "heuristics/builder_common.hpp"

#include <algorithm>

#include "obs/provenance.hpp"

namespace rtsp {

SuperfluousTracker::SuperfluousTracker(std::size_t num_servers,
                                       const PlacementDelta& delta)
    : per_server_(num_servers) {
  for (const Replica& r : delta.superfluous()) {
    per_server_[r.server].push_back(r.object);
    ++total_;
  }
}

void SuperfluousTracker::remove(ServerId i, ObjectId k) {
  RTSP_REQUIRE(i < per_server_.size());
  auto& v = per_server_[i];
  const auto it = std::find(v.begin(), v.end(), k);
  RTSP_REQUIRE_MSG(it != v.end(), "superfluous replica (S" << i << ", O" << k
                                                           << ") already removed");
  v.erase(it);
  --total_;
}

std::vector<Replica> SuperfluousTracker::remaining() const {
  std::vector<Replica> out;
  out.reserve(total_);
  for (ServerId i = 0; i < per_server_.size(); ++i) {
    for (ObjectId k : per_server_[i]) out.push_back({i, k});
  }
  return out;
}

Action nearest_transfer(const ExecutionState& state, ServerId i, ObjectId k) {
  const ServerId src =
      state.model().nearest_source_or_dummy(i, k, state.placement());
  return Action::transfer(i, k, src);
}

void apply_and_push(ExecutionState& state, Schedule& schedule, const Action& a) {
  prov::note_emit(a);
  state.apply(a);
  schedule.push_back(a);
}

void make_space_random(ExecutionState& state, SuperfluousTracker& tracker,
                       Schedule& schedule, ServerId i, ObjectId k, Rng& rng) {
  const Size needed = state.model().object_size(k);
  while (state.free_space(i) < needed) {
    const auto& candidates = tracker.on(i);
    RTSP_REQUIRE_MSG(!candidates.empty(),
                     "cannot free space on S" << i << " for O" << k
                                              << ": no superfluous replicas left");
    const ObjectId victim = candidates[rng.below(candidates.size())];
    apply_and_push(state, schedule, Action::remove(i, victim));
    tracker.remove(i, victim);
  }
}

}  // namespace rtsp
