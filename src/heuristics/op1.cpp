#include "heuristics/op1.hpp"

#include <algorithm>
#include <optional>

#include "core/cost_model.hpp"
#include "heuristics/surgery.hpp"
#include "obs/obs.hpp"
#include "support/thread_pool.hpp"

namespace rtsp {

namespace {

class Op1Run {
 public:
  Op1Run(IncrementalEvaluator& eval, const Op1Options& options)
      : eval_(eval),
        model_(eval.model()),
        x_old_(eval.x_old()),
        options_(options) {}

  void run() {
    build_index(eval_.schedule());
    for (ObjectId k = 0; k < model_.num_objects(); ++k) {
      if (transfers_[k].size() >= 2) round_objects_.push_back(k);
    }
    if (round_objects_.empty()) return;

    // OP1 edits only move actions and change transfer sources, so every
    // object's transfer count — and therefore the round list — is invariant
    // for the whole run.
    std::optional<ThreadPool> pool;
    if (options_.parallel_screen) pool.emplace(options_.threads);
    const std::size_t wave = pool ? std::max<std::size_t>(2 * pool->size(), 1) : 1;
    std::vector<Slot> slots;
    slots.reserve(wave);
    for (std::size_t w = 0; w < wave; ++w) slots.emplace_back(model_, x_old_);

    std::size_t changes = 0;
    std::size_t round = 0;
    ObjectId resume_object = round_objects_.front();
    while (true) {
      OBS_SPAN("op1.round", "round=" + std::to_string(round));
      prov::note_round(static_cast<int>(round));
      ++round;
      std::size_t start = 0;
      if (options_.restart == Op1Options::Restart::Continue) {
        // Resume at the object adopted last round. Identified by ObjectId,
        // not list index, so the cursor cannot go stale even if the round
        // list were ever recomputed.
        const auto it = std::lower_bound(round_objects_.begin(), round_objects_.end(),
                                         resume_object);
        if (it != round_objects_.end()) {
          start = static_cast<std::size_t>(it - round_objects_.begin());
        }
      }
      bool adopted = false;
      bool budget_hit = false;
      for (std::size_t step = 0; step < round_objects_.size() && !adopted;) {
        // Anytime budget poll between waves: a wave always screens to
        // completion, so in tick mode the stop point is deterministic for a
        // fixed wave size (OP1 serial; OP1P's depends on the worker count).
        if (eval_.out_of_budget()) {
          budget_hit = true;
          break;
        }
        const std::size_t n = std::min(wave, round_objects_.size() - step);
        // Screening has no side effects on the engine, so the wave's
        // candidates are all computed against the same base; adopting the
        // earliest hit in scan order reproduces the sequential run exactly.
        const auto screen_slot = [&](std::size_t w) {
          const std::size_t idx = (start + step + w) % round_objects_.size();
          slots[w].found = screen_object(round_objects_[idx], slots[w]);
        };
        if (pool && n > 1) {
          parallel_for(*pool, n, screen_slot);
        } else {
          for (std::size_t w = 0; w < n; ++w) screen_slot(w);
        }
        for (std::size_t w = 0; w < n; ++w) {
          if (!slots[w].found) continue;
          const std::size_t idx = (start + step + w) % round_objects_.size();
          OBS_COUNT("op1.adopted");
          eval_.adopt(slots[w].cand, slots[w].m);  // copy; the slot buffer stays warm
          update_index(eval_.schedule(), slots[w].m.prefix, slots[w].m.cand_suffix_start);
          resume_object = round_objects_[idx];
          adopted = true;
          break;
        }
        step += n;
      }
      if (!adopted || budget_hit) break;
      if (options_.max_changes != 0 && ++changes >= options_.max_changes) break;
    }
  }

 private:
  /// Per-worker buffers: everything a screen needs so concurrent screens
  /// share only the const engine.
  struct Slot {
    Slot(const SystemModel& model, const ReplicationMatrix& x_old)
        : prefix_state(model, x_old),
          eval_scratch(model, x_old),
          holds(model.num_servers(), 0) {}
    ExecutionState prefix_state;
    IncrementalEvaluator::Scratch eval_scratch;
    std::vector<char> holds;
    Schedule cand;
    IncrementalEvaluator::Metrics m;
    bool found = false;
  };

  void build_index(const Schedule& h) {
    events_.assign(model_.num_objects(), {});
    transfers_.assign(model_.num_objects(), {});
    win_events_.resize(model_.num_objects());
    win_transfers_.resize(model_.num_objects());
    for (std::size_t p = 0; p < h.size(); ++p) {
      events_[h[p].object].push_back(p);
      if (h[p].is_transfer()) transfers_[h[p].object].push_back(p);
    }
  }

  /// Splices the base's new window [lo, hi) into the per-object position
  /// index. Positions outside the window are unchanged (adopted candidates
  /// are size-preserving), so only entries inside it are replaced.
  void update_index(const Schedule& h, std::size_t lo, std::size_t hi) {
    if (lo >= hi) return;
    for (std::size_t p = lo; p < hi; ++p) {
      const Action& a = h[p];
      if (win_events_[a.object].empty()) win_objects_.push_back(a.object);
      win_events_[a.object].push_back(p);
      if (a.is_transfer()) win_transfers_[a.object].push_back(p);
    }
    for (ObjectId k = 0; k < model_.num_objects(); ++k) {
      splice(events_[k], win_events_[k], lo, hi);
      splice(transfers_[k], win_transfers_[k], lo, hi);
    }
    for (ObjectId k : win_objects_) {
      win_events_[k].clear();
      win_transfers_[k].clear();
    }
    win_objects_.clear();
  }

  static void splice(std::vector<std::size_t>& list, const std::vector<std::size_t>& add,
                     std::size_t lo, std::size_t hi) {
    const auto first = std::lower_bound(list.begin(), list.end(), lo);
    const auto last = std::lower_bound(first, list.end(), hi);
    if (first == last && add.empty()) return;
    const auto at = static_cast<std::size_t>(first - list.begin());
    list.erase(first, last);
    list.insert(list.begin() + static_cast<std::ptrdiff_t>(at), add.begin(), add.end());
  }

  /// First improving pair for object `k`, in the same (a, b) scan order as
  /// the original sequential implementation. On success the candidate and
  /// its metrics are left in `s`. Const against the engine: safe to run for
  /// several objects concurrently with distinct slots.
  bool screen_object(ObjectId k, Slot& s) const {
    const Schedule& h = eval_.schedule();
    const std::vector<std::size_t>& positions = transfers_[k];
    for (std::size_t a = 0; a + 1 < positions.size(); ++a) {
      for (std::size_t b = a + 1; b < positions.size(); ++b) {
        const std::size_t u = positions[a];
        const std::size_t v = positions[b];
        OBS_COUNT("op1.candidates");
        if (options_.prescreen && estimate_delta(h, k, u, v, s.holds) >= 0) {
          OBS_COUNT("op1.prescreen_rejects");
          continue;
        }
        EditWindow touched;
        if (!build_candidate(h, u, v, s, touched)) continue;
        const auto m = eval_.metrics(s.cand, touched.lo, s.cand.size() - touched.hi);
        if (m.cost >= eval_.cost()) continue;
        if (!eval_.is_valid(s.cand, m, s.eval_scratch)) continue;
        s.m = m;
        return true;
      }
    }
    return false;
  }

  /// Optimistic cost change of moving v's transfer before u (negative =
  /// potentially improving). Capacity penalties are ignored here; the exact
  /// candidate cost decides adoption. O(|k's actions|) via the position
  /// index instead of a full-schedule scan.
  Cost estimate_delta(const Schedule& h, ObjectId k, std::size_t u, std::size_t v,
                      std::vector<char>& holds) const {
    const ServerId i = h[v].server;
    if (h[u].server == i) return 0;

    // Replicators of k just before position u: replay only k's actions.
    std::fill(holds.begin(), holds.end(), 0);
    x_old_.for_each_replicator(k, [&](ServerId s) { holds[s] = 1; });
    for (std::size_t p : events_[k]) {
      if (p >= u) break;
      const Action& a = h[p];
      holds[a.server] = a.is_transfer() ? 1 : 0;
    }
    LinkCost new_src = model_.dummy_link_cost();
    for (ServerId s : model_.neighbors_by_cost(i)) {
      if (holds[s]) {
        new_src = model_.costs().at(i, s);
        break;
      }
    }
    const LinkCost old_src = model_.source_link_cost(i, h[v].source);
    const Size size = model_.object_size(k);
    Cost delta = size * (new_src - old_src);
    for (std::size_t w : transfers_[k]) {
      if (w < u || w == v) continue;
      const ServerId d = h[w].server;
      if (d == i) continue;
      const LinkCost cur = model_.source_link_cost(d, h[w].source);
      const LinkCost via_i = model_.costs().at(d, i);
      if (via_i < cur) delta -= size * (cur - via_i);
    }
    return delta;
  }

  /// Mechanically constructs the paper's H' in s.cand: move v's transfer
  /// before u's enabling deletion run, re-source it, repair capacity (cases
  /// iii/iv) and re-source the object's later transfers that benefit.
  /// Returns false when the capacity repair fails; validity is checked by
  /// the caller. All mutations lie in [insert_point, v]; positions past v
  /// still match the base, so the tail scans walk the position index.
  bool build_candidate(const Schedule& h, std::size_t u, std::size_t v, Slot& s,
                       EditWindow& touched) const {
    const ServerId i = h[v].server;
    const ObjectId k = h[v].object;
    if (h[u].server == i) return false;

    // u's enabling deletions: the contiguous run of deletions on S_i'
    // immediately before u (the paper's D_i'k1..kn).
    std::size_t insert_point = u;
    while (insert_point > 0 && h[insert_point - 1].is_delete() &&
           h[insert_point - 1].server == h[u].server) {
      --insert_point;
    }

    s.cand = h;
    move_action_earlier(s.cand, v, insert_point, &touched);
    std::size_t t_pos = insert_point;

    // Re-source the moved transfer to the nearest replicator at its new
    // position (the paper's T_ikN(i,k,X^u)). The prefix [0, t_pos) equals
    // the base's, so the state comes from the engine's checkpoint cache.
    eval_.state_before(t_pos, s.prefix_state);
    {
      const auto nearest = model_.nearest_replicator(i, k, s.prefix_state.placement());
      s.cand[t_pos].source = nearest ? *nearest : kDummyServer;
    }

    // Cases (iii)/(iv): make room at S_i by pulling its deletions forward,
    // re-sourcing any orphaned readers to their nearest alternative.
    const auto repair =
        pull_deletions_for_space(model_, x_old_, s.cand, t_pos, v,
                                 OrphanPolicy::NearestElseDummy, &touched,
                                 &s.prefix_state);
    if (!repair.ok) return false;
    t_pos = repair.t_pos;

    // Later transfers of k switch to the new early replica when cheaper —
    // but only while S_i still holds k (a later deletion of (i, k) bounds
    // the window; H2's temporary replicas make this reachable). The mutated
    // region ends at v; beyond it cand == base, so the index takes over.
    std::size_t bound = s.cand.size();
    for (std::size_t p = t_pos + 1; p <= v && p < s.cand.size(); ++p) {
      const Action& a = s.cand[p];
      if (a.is_delete() && a.server == i && a.object == k) {
        bound = p;
        break;
      }
    }
    if (bound == s.cand.size()) {
      for (std::size_t p : events_[k]) {
        if (p <= v) continue;
        if (h[p].is_delete() && h[p].server == i) {
          bound = p;
          break;
        }
      }
    }
    const auto resource = [&](std::size_t p) {
      Action& a = s.cand[p];
      if (!a.is_transfer() || a.server == i) return;
      const LinkCost cur = model_.source_link_cost(a.server, a.source);
      const LinkCost via_i = model_.costs().at(a.server, i);
      if (via_i < cur) {
        a.source = i;
        touched.note(p);
      }
    };
    for (std::size_t p = t_pos + 1; p < bound && p <= v; ++p) {
      if (s.cand[p].object == k) resource(p);
    }
    for (std::size_t p : events_[k]) {
      if (p <= v) continue;
      if (p >= bound) break;
      resource(p);
    }
    return true;
  }

  IncrementalEvaluator& eval_;
  const SystemModel& model_;
  const ReplicationMatrix& x_old_;
  const Op1Options& options_;

  /// Sorted positions of every action / every transfer of each object in
  /// the engine's base schedule, maintained incrementally across adoptions.
  std::vector<std::vector<std::size_t>> events_;
  std::vector<std::vector<std::size_t>> transfers_;
  std::vector<ObjectId> round_objects_;  ///< objects with >= 2 transfers
  // update_index scratch (kept hot across adoptions).
  std::vector<std::vector<std::size_t>> win_events_;
  std::vector<std::vector<std::size_t>> win_transfers_;
  std::vector<ObjectId> win_objects_;
};

}  // namespace

Schedule Op1Improver::improve(const SystemModel& model, const ReplicationMatrix& x_old,
                              const ReplicationMatrix& x_new, Schedule schedule,
                              Rng& rng) const {
  IncrementalEvaluator eval(model, x_old, x_new, std::move(schedule));
  improve_incremental(eval, rng);
  return eval.take_schedule();
}

void Op1Improver::improve_incremental(IncrementalEvaluator& eval, Rng& /*rng*/) const {
  // Both the sequential and parallel-screen variants adopt on this thread in
  // scan order, so the recorded provenance is identical for OP1 and OP1P.
  const prov::StageScope stage(prov::StageKind::Improver, name());
  Op1Run(eval, options_).run();
}

}  // namespace rtsp
