#include "heuristics/op1.hpp"

#include <algorithm>
#include <optional>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/surgery.hpp"

namespace rtsp {

namespace {

/// Transfer positions of each object that has at least two transfers.
std::vector<std::pair<ObjectId, std::vector<std::size_t>>> multi_transfer_objects(
    const Schedule& h, std::size_t num_objects) {
  std::vector<std::vector<std::size_t>> by_object(num_objects);
  for (std::size_t p = 0; p < h.size(); ++p) {
    if (h[p].is_transfer()) by_object[h[p].object].push_back(p);
  }
  std::vector<std::pair<ObjectId, std::vector<std::size_t>>> out;
  for (ObjectId k = 0; k < num_objects; ++k) {
    if (by_object[k].size() >= 2) out.emplace_back(k, std::move(by_object[k]));
  }
  return out;
}

class Op1Run {
 public:
  Op1Run(const SystemModel& model, const ReplicationMatrix& x_old,
         const ReplicationMatrix& x_new, const Op1Options& options)
      : model_(model), x_old_(x_old), x_new_(x_new), options_(options) {}

  Schedule run(Schedule h) const {
    Cost current_cost = schedule_cost(model_, h);
    std::size_t changes = 0;
    std::size_t object_cursor = 0;  // used by the Continue policy
    while (true) {
      const auto objects = multi_transfer_objects(h, model_.num_objects());
      if (objects.empty()) break;
      bool adopted = false;
      const std::size_t start = options_.restart == Op1Options::Restart::Continue
                                    ? object_cursor % objects.size()
                                    : 0;
      for (std::size_t step = 0; step < objects.size() && !adopted; ++step) {
        const std::size_t idx = (start + step) % objects.size();
        const auto& [k, positions] = objects[idx];
        for (std::size_t a = 0; a + 1 < positions.size() && !adopted; ++a) {
          for (std::size_t b = a + 1; b < positions.size() && !adopted; ++b) {
            const std::size_t u = positions[a];
            const std::size_t v = positions[b];
            if (options_.prescreen && estimate_delta(h, k, positions, u, v) >= 0) {
              continue;
            }
            auto cand = build_candidate(h, u, v);
            if (!cand) continue;
            const Cost cand_cost = schedule_cost(model_, *cand);
            if (cand_cost < current_cost &&
                Validator::is_valid(model_, x_old_, x_new_, *cand)) {
              h = std::move(*cand);
              current_cost = cand_cost;
              adopted = true;
              object_cursor = idx;  // Continue resumes at this object
            }
          }
        }
      }
      if (!adopted) break;
      if (options_.max_changes != 0 && ++changes >= options_.max_changes) break;
    }
    return h;
  }

 private:
  /// Optimistic cost change of moving v's transfer before u (negative =
  /// potentially improving). Capacity penalties are ignored here; the exact
  /// candidate cost decides adoption.
  Cost estimate_delta(const Schedule& h, ObjectId k,
                      const std::vector<std::size_t>& positions, std::size_t u,
                      std::size_t v) const {
    const ServerId i = h[v].server;
    if (h[u].server == i) return 0;

    // Replicators of k just before position u.
    std::vector<bool> holds(model_.num_servers(), false);
    for (ServerId s : x_old_.replicators_of(k)) holds[s] = true;
    for (std::size_t p = 0; p < u; ++p) {
      const Action& a = h[p];
      if (a.object != k) continue;
      if (a.is_transfer()) holds[a.server] = true;
      else holds[a.server] = false;
    }
    LinkCost new_src = model_.dummy_link_cost();
    for (ServerId s : model_.neighbors_by_cost(i)) {
      if (holds[s]) {
        new_src = model_.costs().at(i, s);
        break;
      }
    }
    const LinkCost old_src = model_.source_link_cost(i, h[v].source);
    const Size size = model_.object_size(k);
    Cost delta = size * (new_src - old_src);
    for (std::size_t w : positions) {
      if (w < u || w == v) continue;
      const ServerId d = h[w].server;
      if (d == i) continue;
      const LinkCost cur = model_.source_link_cost(d, h[w].source);
      const LinkCost via_i = model_.costs().at(d, i);
      if (via_i < cur) delta -= size * (cur - via_i);
    }
    return delta;
  }

  /// Mechanically constructs the paper's H': move v's transfer before u's
  /// enabling deletion run, re-source it, repair capacity (cases iii/iv) and
  /// re-source the object's later transfers that benefit. Returns nullopt
  /// when the capacity repair fails; validity is checked by the caller.
  std::optional<Schedule> build_candidate(const Schedule& h, std::size_t u,
                                          std::size_t v) const {
    const ServerId i = h[v].server;
    const ObjectId k = h[v].object;
    if (h[u].server == i) return std::nullopt;

    // u's enabling deletions: the contiguous run of deletions on S_i'
    // immediately before u (the paper's D_i'k1..kn).
    std::size_t insert_point = u;
    while (insert_point > 0 && h[insert_point - 1].is_delete() &&
           h[insert_point - 1].server == h[u].server) {
      --insert_point;
    }

    Schedule cand = h;
    move_action_earlier(cand, v, insert_point);
    std::size_t t_pos = insert_point;

    // Re-source the moved transfer to the nearest replicator at its new
    // position (the paper's T_ikN(i,k,X^u)).
    {
      const ExecutionState st = simulate_prefix_lenient(model_, x_old_, cand, t_pos);
      const auto nearest = model_.nearest_replicator(i, k, st.placement());
      cand[t_pos].source = nearest ? *nearest : kDummyServer;
    }

    // Cases (iii)/(iv): make room at S_i by pulling its deletions forward,
    // re-sourcing any orphaned readers to their nearest alternative.
    const auto repair =
        pull_deletions_for_space(model_, x_old_, cand, t_pos, v,
                                 OrphanPolicy::NearestElseDummy);
    if (!repair.ok) return std::nullopt;
    t_pos = repair.t_pos;

    // Later transfers of k switch to the new early replica when cheaper —
    // but only while S_i still holds k (a later deletion of (i, k) bounds
    // the window; H2's temporary replicas make this reachable).
    std::size_t bound = cand.size();
    for (std::size_t p = t_pos + 1; p < cand.size(); ++p) {
      if (cand[p].is_delete() && cand[p].server == i && cand[p].object == k) {
        bound = p;
        break;
      }
    }
    for (std::size_t p = t_pos + 1; p < bound; ++p) {
      Action& a = cand[p];
      if (!a.is_transfer() || a.object != k || a.server == i) continue;
      const LinkCost cur = model_.source_link_cost(a.server, a.source);
      const LinkCost via_i = model_.costs().at(a.server, i);
      if (via_i < cur) a.source = i;
    }
    return cand;
  }

  const SystemModel& model_;
  const ReplicationMatrix& x_old_;
  const ReplicationMatrix& x_new_;
  const Op1Options& options_;
};

}  // namespace

Schedule Op1Improver::improve(const SystemModel& model, const ReplicationMatrix& x_old,
                              const ReplicationMatrix& x_new, Schedule schedule,
                              Rng& /*rng*/) const {
  return Op1Run(model, x_old, x_new, options_).run(std::move(schedule));
}

}  // namespace rtsp
