#include "heuristics/h2.hpp"

#include <algorithm>
#include <optional>

#include "core/validator.hpp"
#include "heuristics/surgery.hpp"

namespace rtsp {

namespace {

struct Attempt {
  Schedule schedule;
  bool touched_tail = false;  ///< mutations beyond the dummy's position
};

class H2Run {
 public:
  H2Run(const SystemModel& model, const ReplicationMatrix& x_old,
        const ReplicationMatrix& x_new, const H2Options& options)
      : model_(model), x_old_(x_old), x_new_(x_new), options_(options) {}

  Schedule run(Schedule h) const {
    for (int pass = 0; pass < options_.max_passes; ++pass) {
      bool changed = false;
      bool restart = false;
      std::size_t u = 0;
      while (u < h.size()) {
        if (h[u].is_dummy_transfer()) {
          if (auto attempt = try_restore_at(h, u)) {
            h = std::move(attempt->schedule);
            changed = true;
            if (attempt->touched_tail) {
              restart = true;  // positions after u changed; rescan
              break;
            }
            // Two actions were inserted at or before u+2; the next
            // unscanned action now sits at u+3.
            u += 3;
            continue;
          }
        }
        ++u;
      }
      if (!changed && !restart) break;
    }
    return h;
  }

 private:
  std::optional<Attempt> try_restore_at(const Schedule& h, std::size_t u) const {
    const ServerId dest = h[u].server;  // the paper's S_i'
    const ObjectId k = h[u].object;
    const std::size_t d_pos = find_preceding_deletion(h, u, k);
    if (d_pos == npos) return std::nullopt;
    const ServerId deleter = h[d_pos].server;  // the paper's S_i''

    // Host candidates ranked by the added transfer cost
    // s(O_k) * (l_{host,deleter} + l_{dest,host}).
    const ExecutionState st = simulate_prefix_lenient(model_, x_old_, h, d_pos);
    struct Candidate {
      ServerId host;
      Cost added_cost;
      bool has_space;
    };
    std::vector<Candidate> candidates;
    for (ServerId host = 0; host < model_.num_servers(); ++host) {
      if (host == dest || host == deleter || st.holds(host, k)) continue;
      const Cost added = model_.object_size(k) * (model_.costs().at(host, deleter) +
                                                  model_.costs().at(dest, host));
      const bool space = st.free_space(host) >= model_.object_size(k);
      candidates.push_back({host, added, space});
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.added_cost < b.added_cost;
                     });

    // Direct path: hosts that already have room at d_pos.
    for (const Candidate& c : candidates) {
      if (!c.has_space) continue;
      Schedule cand = h;
      cand.insert(d_pos, Action::transfer(c.host, k, deleter));
      // Everything from d_pos on shifted one right; the dummy sits at u+1.
      cand[u + 1] = Action::transfer(dest, k, c.host);
      cand.insert(u + 2, Action::remove(c.host, k));
      if (accept(cand, h)) return Attempt{std::move(cand), false};
    }

    // Fallback: create room on a host by pulling its later deletions of
    // superfluous replicas forward (the validator plus the strict
    // dummy-count gate enforce the paper's "one replica must survive per
    // object" condition).
    std::size_t tried = 0;
    for (const Candidate& c : candidates) {
      if (c.has_space) continue;
      if (tried++ >= options_.max_fallback_hosts) break;
      Schedule cand = h;
      cand.insert(d_pos, Action::transfer(c.host, k, deleter));
      const auto repair =
          pull_deletions_for_space(model_, x_old_, cand, d_pos, cand.size() - 1,
                                   OrphanPolicy::NearestElseDummy);
      if (!repair.ok) continue;
      // Pulls may have shifted the dummy transfer; locate it again.
      std::size_t dummy_pos = npos;
      for (std::size_t p = repair.t_pos + 1; p < cand.size(); ++p) {
        const Action& a = cand[p];
        if (a.is_dummy_transfer() && a.server == dest && a.object == k) {
          dummy_pos = p;
          break;
        }
      }
      if (dummy_pos == npos) continue;
      cand[dummy_pos] = Action::transfer(dest, k, c.host);
      cand.insert(dummy_pos + 1, Action::remove(c.host, k));
      if (accept(cand, h)) return Attempt{std::move(cand), true};
    }
    return std::nullopt;
  }

  bool accept(const Schedule& cand, const Schedule& original) const {
    if (cand.dummy_transfer_count() >= original.dummy_transfer_count()) return false;
    return Validator::is_valid(model_, x_old_, x_new_, cand);
  }

  const SystemModel& model_;
  const ReplicationMatrix& x_old_;
  const ReplicationMatrix& x_new_;
  const H2Options& options_;
};

}  // namespace

Schedule H2Improver::improve(const SystemModel& model, const ReplicationMatrix& x_old,
                             const ReplicationMatrix& x_new, Schedule schedule,
                             Rng& /*rng*/) const {
  return H2Run(model, x_old, x_new, options_).run(std::move(schedule));
}

}  // namespace rtsp
