#include "heuristics/h2.hpp"

#include <algorithm>
#include <optional>

#include "heuristics/surgery.hpp"
#include "obs/obs.hpp"

namespace rtsp {

namespace {

class H2Run {
 public:
  H2Run(IncrementalEvaluator& eval, const H2Options& options)
      : eval_(eval),
        model_(eval.model()),
        x_old_(eval.x_old()),
        options_(options),
        prefix_state_(eval.model(), eval.x_old()) {}

  void run() {
    for (int pass = 0; pass < options_.max_passes; ++pass) {
      OBS_SPAN("h2.pass", "pass=" + std::to_string(pass));
      prov::note_pass(pass);
      bool changed = false;
      bool restart = false;
      std::size_t u = 0;
      while (u < eval_.schedule().size()) {
        if (eval_.schedule()[u].is_dummy_transfer()) {
          // Anytime budget poll (deterministic stop point: per candidate).
          if (eval_.out_of_budget()) return;
          if (auto touched_tail = try_restore_at(u)) {
            changed = true;
            if (*touched_tail) {
              restart = true;  // positions after u changed; rescan
              break;
            }
            // Two actions were inserted at or before u+2; the next
            // unscanned action now sits at u+3.
            u += 3;
            continue;
          }
        }
        ++u;
      }
      if (!changed && !restart) break;
    }
  }

 private:
  /// Attempts the rewrite; on success the candidate is adopted into the
  /// engine and the return value says whether positions after `u` changed.
  std::optional<bool> try_restore_at(std::size_t u) {
    const Schedule& h = eval_.schedule();
    const ServerId dest = h[u].server;  // the paper's S_i'
    const ObjectId k = h[u].object;
    const std::size_t d_pos = find_preceding_deletion(h, u, k);
    if (d_pos == npos) return std::nullopt;
    const ServerId deleter = h[d_pos].server;  // the paper's S_i''

    // Host candidates ranked by the added transfer cost
    // s(O_k) * (l_{host,deleter} + l_{dest,host}).
    eval_.state_before(d_pos, prefix_state_);
    const ExecutionState& st = prefix_state_;
    struct Candidate {
      ServerId host;
      Cost added_cost;
      bool has_space;
    };
    std::vector<Candidate> candidates;
    for (ServerId host = 0; host < model_.num_servers(); ++host) {
      if (host == dest || host == deleter || st.holds(host, k)) continue;
      const Cost added = model_.object_size(k) * (model_.costs().at(host, deleter) +
                                                  model_.costs().at(dest, host));
      const bool space = st.free_space(host) >= model_.object_size(k);
      candidates.push_back({host, added, space});
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.added_cost < b.added_cost;
                     });

    // Direct path: hosts that already have room at d_pos.
    for (const Candidate& c : candidates) {
      if (!c.has_space) continue;
      cand_ = h;
      cand_.insert(d_pos, Action::transfer(c.host, k, deleter));
      // Everything from d_pos on shifted one right; the dummy sits at u+1.
      cand_[u + 1] = Action::transfer(dest, k, c.host);
      cand_.insert(u + 2, Action::remove(c.host, k));
      // Untouched: the prefix [0, d_pos) and everything past the inserted
      // removal (the candidate is 2 actions longer than the base).
      const auto m = eval_.metrics(cand_, d_pos, cand_.size() - (u + 3));
      if (accept(m)) {
        eval_.adopt(std::move(cand_), m);
        return false;
      }
    }

    // Fallback: create room on a host by pulling its later deletions of
    // superfluous replicas forward (the validity check plus the strict
    // dummy-count gate enforce the paper's "one replica must survive per
    // object" condition).
    std::size_t tried = 0;
    for (const Candidate& c : candidates) {
      if (c.has_space) continue;
      if (tried++ >= options_.max_fallback_hosts) break;
      cand_ = h;
      cand_.insert(d_pos, Action::transfer(c.host, k, deleter));
      // prefix_state_ is still the lenient state before d_pos, which is
      // exactly the state before the just-inserted transfer.
      const auto repair =
          pull_deletions_for_space(model_, x_old_, cand_, d_pos, cand_.size() - 1,
                                   OrphanPolicy::NearestElseDummy,
                                   /*touched=*/nullptr, &prefix_state_);
      if (!repair.ok) continue;
      // Pulls may have shifted the dummy transfer; locate it again.
      std::size_t dummy_pos = npos;
      for (std::size_t p = repair.t_pos + 1; p < cand_.size(); ++p) {
        const Action& a = cand_[p];
        if (a.is_dummy_transfer() && a.server == dest && a.object == k) {
          dummy_pos = p;
          break;
        }
      }
      if (dummy_pos == npos) continue;
      cand_[dummy_pos] = Action::transfer(dest, k, c.host);
      cand_.insert(dummy_pos + 1, Action::remove(c.host, k));
      const auto m = eval_.metrics(cand_, d_pos, 0);
      if (accept(m)) {
        eval_.adopt(std::move(cand_), m);
        return true;
      }
    }
    return std::nullopt;
  }

  bool accept(const IncrementalEvaluator::Metrics& m) {
    OBS_COUNT("h2.candidates");
    if (m.dummy_transfers >= eval_.dummy_transfers()) return false;
    if (!eval_.is_valid(cand_, m)) return false;
    OBS_COUNT("h2.adopted");
    return true;
  }

  IncrementalEvaluator& eval_;
  const SystemModel& model_;
  const ReplicationMatrix& x_old_;
  const H2Options& options_;
  ExecutionState prefix_state_;
  Schedule cand_;  ///< candidate buffer, reused across attempts
};

}  // namespace

Schedule H2Improver::improve(const SystemModel& model, const ReplicationMatrix& x_old,
                             const ReplicationMatrix& x_new, Schedule schedule,
                             Rng& rng) const {
  IncrementalEvaluator eval(model, x_old, x_new, std::move(schedule));
  improve_incremental(eval, rng);
  return eval.take_schedule();
}

void H2Improver::improve_incremental(IncrementalEvaluator& eval, Rng& /*rng*/) const {
  const prov::StageScope stage(prov::StageKind::Improver, name());
  H2Run(eval, options_).run();
}

}  // namespace rtsp
