// AR — All Random (Sec. 4.2).
//
// Outstanding replicas are created in uniformly random order; deletions of
// superfluous replicas at the destination are emitted lazily, only when space
// is needed, picking victims at random. Remaining superfluous replicas are
// deleted at the end.
#pragma once

#include "heuristics/scheduler.hpp"

namespace rtsp {

class ArBuilder final : public ScheduleBuilder {
 public:
  std::string name() const override { return "AR"; }
  Schedule build(const SystemModel& model, const ReplicationMatrix& x_old,
                 const ReplicationMatrix& x_new, Rng& rng) const override;
};

}  // namespace rtsp
