// FixpointImprover: applies a chain of improvers repeatedly until the
// schedule stops changing (or a round cap is hit).
//
// H1 and H2 interact — a replica staged by H2 can unlock an H1 move and
// vice versa — so running the pair to a fixpoint is the natural "apply H1
// and H2" semantics when squeezing out the last dummy transfers. Each inner
// improver is already monotone (validity preserved, target metric never
// worsened), so the fixpoint terminates: the schedule can only change
// finitely often under strictly-improving rewrites.
#pragma once

#include <vector>

#include "heuristics/scheduler.hpp"

namespace rtsp {

class FixpointImprover final : public ScheduleImprover {
 public:
  explicit FixpointImprover(std::vector<ImproverPtr> chain, int max_rounds = 16);

  std::string name() const override { return name_; }
  Schedule improve(const SystemModel& model, const ReplicationMatrix& x_old,
                   const ReplicationMatrix& x_new, Schedule schedule,
                   Rng& rng) const override;
  void improve_incremental(IncrementalEvaluator& eval, Rng& rng) const override;

  /// Rounds executed by the most recent improve() call (diagnostic; the
  /// improver itself is stateless across calls apart from this counter).
  int last_rounds() const { return last_rounds_; }

 private:
  std::vector<ImproverPtr> chain_;
  int max_rounds_;
  std::string name_;
  mutable int last_rounds_ = 0;
};

}  // namespace rtsp
