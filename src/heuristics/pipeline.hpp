// Pipeline: a builder followed by a sequence of improvers — the paper's
// algorithm combinations like GOLCF+H1+H2+OP1.
#pragma once

#include <string>
#include <vector>

#include "heuristics/scheduler.hpp"

namespace rtsp {

/// Wall-clock split of one Pipeline::run call, for callers that attribute
/// time to the build vs improve stages (experiment CSVs report both).
struct PipelineTiming {
  double builder_seconds = 0.0;
  /// Improver-chain time; includes constructing the shared incremental
  /// evaluator (its initial replay is part of the improvement cost).
  double improver_seconds = 0.0;
};

class Pipeline {
 public:
  Pipeline(BuilderPtr builder, std::vector<ImproverPtr> improvers);

  /// "BUILDER+IMP1+IMP2" derived from component names.
  const std::string& name() const { return name_; }

  const ScheduleBuilder& builder() const { return *builder_; }
  const std::vector<ImproverPtr>& improvers() const { return improvers_; }

  /// Builds the initial schedule and applies each improver in order.
  /// When `timing` is non-null the stage split is written into it.
  Schedule run(const SystemModel& model, const ReplicationMatrix& x_old,
               const ReplicationMatrix& x_new, Rng& rng,
               PipelineTiming* timing = nullptr) const;

 private:
  BuilderPtr builder_;
  std::vector<ImproverPtr> improvers_;
  std::string name_;
};

}  // namespace rtsp
