// Pipeline: a builder followed by a sequence of improvers — the paper's
// algorithm combinations like GOLCF+H1+H2+OP1.
#pragma once

#include <string>
#include <vector>

#include "heuristics/scheduler.hpp"

namespace rtsp {

class Pipeline {
 public:
  Pipeline(BuilderPtr builder, std::vector<ImproverPtr> improvers);

  /// "BUILDER+IMP1+IMP2" derived from component names.
  const std::string& name() const { return name_; }

  const ScheduleBuilder& builder() const { return *builder_; }
  const std::vector<ImproverPtr>& improvers() const { return improvers_; }

  /// Builds the initial schedule and applies each improver in order.
  Schedule run(const SystemModel& model, const ReplicationMatrix& x_old,
               const ReplicationMatrix& x_new, Rng& rng) const;

 private:
  BuilderPtr builder_;
  std::vector<ImproverPtr> improvers_;
  std::string name_;
};

}  // namespace rtsp
