// RDF — Random Deletions First (Sec. 4.1).
//
// Emits every deletion of a superfluous replica first (random order), then
// every outstanding transfer (random order), each using its cheapest source
// at that point, or the dummy when the last replica was already deleted.
#pragma once

#include "heuristics/scheduler.hpp"

namespace rtsp {

class RdfBuilder final : public ScheduleBuilder {
 public:
  std::string name() const override { return "RDF"; }
  Schedule build(const SystemModel& model, const ReplicationMatrix& x_old,
                 const ReplicationMatrix& x_new, Rng& rng) const override;
};

}  // namespace rtsp
