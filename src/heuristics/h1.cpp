#include "heuristics/h1.hpp"

#include <optional>

#include "core/validator.hpp"
#include "heuristics/surgery.hpp"

namespace rtsp {

namespace {

class H1Run {
 public:
  H1Run(const SystemModel& model, const ReplicationMatrix& x_old,
        const ReplicationMatrix& x_new, const H1Options& options)
      : model_(model), x_old_(x_old), x_new_(x_new), options_(options) {}

  Schedule run(Schedule h) const {
    for (int pass = 0; pass < options_.max_passes; ++pass) {
      bool changed = false;
      std::size_t u = 0;
      while (u < h.size()) {
        if (h[u].is_dummy_transfer()) {
          if (auto better = try_restore_at(h, u)) {
            // All mutations live at indices <= u, so the tail is intact and
            // the scan may simply continue.
            h = std::move(*better);
            changed = true;
          }
        }
        ++u;
      }
      if (!changed) break;  // new dummies from case (iii) need another pass
    }
    return h;
  }

 private:
  /// Transactional attempt: returns the rewritten schedule only when it
  /// validates and strictly reduces the dummy count.
  std::optional<Schedule> try_restore_at(const Schedule& h, std::size_t u) const {
    Schedule cand = h;
    if (!restore_dummy(cand, u, 0)) return std::nullopt;
    if (cand.dummy_transfer_count() >= h.dummy_transfer_count()) return std::nullopt;
    if (!Validator::is_valid(model_, x_old_, x_new_, cand)) return std::nullopt;
    return cand;
  }

  /// Moves the dummy transfer at `u` before the nearest preceding deletion
  /// of its object and repairs capacity. Mutates `cand`; may leave it
  /// invalid (the caller validates). Returns false when no move exists.
  bool restore_dummy(Schedule& cand, std::size_t u, int depth) const {
    if (depth >= options_.max_recursion_depth) return false;
    const ServerId i = cand[u].server;
    const ObjectId k = cand[u].object;

    const std::size_t d_pos = find_preceding_deletion(cand, u, k);
    if (d_pos == npos) return false;
    const ServerId j = cand[d_pos].server;
    if (j == i) return false;  // cannot source from the destination itself

    ServerId src = j;
    if (options_.resource_nearest) {
      const ExecutionState st = simulate_prefix_lenient(model_, x_old_, cand, d_pos);
      const auto nearest = model_.nearest_replicator(i, k, st.placement());
      if (nearest) src = *nearest;
    }

    cand.erase(u);
    cand.insert(d_pos, Action::transfer(i, k, src));
    // The displaced region [d_pos+1, u] now holds D_jk followed by the old
    // in-between sub-schedule; all pulls stay inside it.
    const auto repair = pull_deletions_for_space(model_, x_old_, cand, d_pos, u,
                                                 OrphanPolicy::Dummy);
    if (!repair.ok) return false;

    // Case (iii): the repair may have orphaned readers into dummy
    // transfers; try to restore each one recursively (failure just leaves
    // it as a dummy — the caller's strict-improvement gate decides).
    for (const Action& signature : repair.new_dummies) {
      const std::size_t pos = find_dummy(cand, signature);
      if (pos == npos) continue;  // already rewritten by a nested restore
      Schedule backup = cand;
      if (!restore_dummy(cand, pos, depth + 1)) cand = std::move(backup);
    }
    return true;
  }

  static std::size_t find_dummy(const Schedule& h, const Action& signature) {
    for (std::size_t p = 0; p < h.size(); ++p) {
      const Action& a = h[p];
      if (a.is_dummy_transfer() && a.server == signature.server &&
          a.object == signature.object) {
        return p;
      }
    }
    return npos;
  }

  const SystemModel& model_;
  const ReplicationMatrix& x_old_;
  const ReplicationMatrix& x_new_;
  const H1Options& options_;
};

}  // namespace

Schedule H1Improver::improve(const SystemModel& model, const ReplicationMatrix& x_old,
                             const ReplicationMatrix& x_new, Schedule schedule,
                             Rng& /*rng*/) const {
  return H1Run(model, x_old, x_new, options_).run(std::move(schedule));
}

}  // namespace rtsp
