#include "heuristics/h1.hpp"

#include "heuristics/surgery.hpp"
#include "obs/obs.hpp"

namespace rtsp {

namespace {

class H1Run {
 public:
  H1Run(IncrementalEvaluator& eval, const H1Options& options)
      : eval_(eval),
        model_(eval.model()),
        x_old_(eval.x_old()),
        options_(options),
        prefix_state_(eval.model(), eval.x_old()) {}

  void run() {
    for (int pass = 0; pass < options_.max_passes; ++pass) {
      OBS_SPAN("h1.pass", "pass=" + std::to_string(pass));
      prov::note_pass(pass);
      bool changed = false;
      std::size_t u = 0;
      while (u < eval_.schedule().size()) {
        if (eval_.schedule()[u].is_dummy_transfer()) {
          // Anytime budget poll (deterministic stop point: per candidate).
          if (eval_.out_of_budget()) return;
          if (try_restore_at(u)) {
            // All mutations live at indices <= u, so the tail is intact and
            // the scan may simply continue.
            changed = true;
          }
        }
        ++u;
      }
      if (!changed) break;  // new dummies from case (iii) need another pass
    }
  }

 private:
  /// Transactional attempt: adopts the rewrite only when it validates and
  /// strictly reduces the dummy count.
  bool try_restore_at(std::size_t u) {
    OBS_COUNT("h1.candidates");
    cand_ = eval_.schedule();
    EditWindow touched;
    if (!restore_dummy(cand_, u, 0, touched)) return false;
    const auto m = eval_.metrics(cand_, touched.lo, cand_.size() - touched.hi);
    if (m.dummy_transfers >= eval_.dummy_transfers()) return false;
    if (!eval_.is_valid(cand_, m)) return false;
    eval_.adopt(std::move(cand_), m);
    OBS_COUNT("h1.adopted");
    return true;
  }

  /// Moves the dummy transfer at `u` before the nearest preceding deletion
  /// of its object and repairs capacity. Mutates `cand`; may leave it
  /// invalid (the caller validates). Returns false when no move exists.
  bool restore_dummy(Schedule& cand, std::size_t u, int depth, EditWindow& touched) {
    if (depth >= options_.max_recursion_depth) return false;
    const ServerId i = cand[u].server;
    const ObjectId k = cand[u].object;

    const std::size_t d_pos = find_preceding_deletion(cand, u, k);
    if (d_pos == npos) return false;
    const ServerId j = cand[d_pos].server;
    if (j == i) return false;  // cannot source from the destination itself

    // While cand[0..d_pos) still matches the engine's base schedule (true
    // until an earlier edit is noted), the state there comes from the prefix
    // cache instead of an O(L) replay.
    const bool clean_prefix = touched.empty() || d_pos <= touched.lo;
    if (clean_prefix) eval_.state_before(d_pos, prefix_state_);

    ServerId src = j;
    if (options_.resource_nearest) {
      if (!clean_prefix) prefix_state_ = simulate_prefix_lenient(model_, x_old_, cand, d_pos);
      const auto nearest = model_.nearest_replicator(i, k, prefix_state_.placement());
      if (nearest) src = *nearest;
    }

    cand.erase(u);
    cand.insert(d_pos, Action::transfer(i, k, src));
    touched.note_range(d_pos, u + 1);
    // The displaced region [d_pos+1, u] now holds D_jk followed by the old
    // in-between sub-schedule; all pulls stay inside it.
    const auto repair = pull_deletions_for_space(
        model_, x_old_, cand, d_pos, u, OrphanPolicy::Dummy, &touched,
        clean_prefix || options_.resource_nearest ? &prefix_state_ : nullptr);
    if (!repair.ok) return false;

    // Case (iii): the repair may have orphaned readers into dummy
    // transfers; try to restore each one recursively (failure just leaves
    // it as a dummy — the caller's strict-improvement gate decides).
    for (const Action& signature : repair.new_dummies) {
      const std::size_t pos = find_dummy(cand, signature);
      if (pos == npos) continue;  // already rewritten by a nested restore
      Schedule backup = cand;
      if (!restore_dummy(cand, pos, depth + 1, touched)) cand = std::move(backup);
    }
    return true;
  }

  static std::size_t find_dummy(const Schedule& h, const Action& signature) {
    for (std::size_t p = 0; p < h.size(); ++p) {
      const Action& a = h[p];
      if (a.is_dummy_transfer() && a.server == signature.server &&
          a.object == signature.object) {
        return p;
      }
    }
    return npos;
  }

  IncrementalEvaluator& eval_;
  const SystemModel& model_;
  const ReplicationMatrix& x_old_;
  const H1Options& options_;
  ExecutionState prefix_state_;
  Schedule cand_;  ///< candidate buffer, reused across attempts
};

}  // namespace

Schedule H1Improver::improve(const SystemModel& model, const ReplicationMatrix& x_old,
                             const ReplicationMatrix& x_new, Schedule schedule,
                             Rng& rng) const {
  IncrementalEvaluator eval(model, x_old, x_new, std::move(schedule));
  improve_incremental(eval, rng);
  return eval.take_schedule();
}

void H1Improver::improve_incremental(IncrementalEvaluator& eval, Rng& /*rng*/) const {
  const prov::StageScope stage(prov::StageKind::Improver, name());
  H1Run(eval, options_).run();
}

}  // namespace rtsp
