#include "heuristics/fixpoint.hpp"

#include "support/assert.hpp"

namespace rtsp {

FixpointImprover::FixpointImprover(std::vector<ImproverPtr> chain, int max_rounds)
    : chain_(std::move(chain)), max_rounds_(max_rounds) {
  RTSP_REQUIRE(!chain_.empty());
  RTSP_REQUIRE(max_rounds_ >= 1);
  name_ = "FIX(";
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    RTSP_REQUIRE(chain_[i] != nullptr);
    if (i) name_ += "+";
    name_ += chain_[i]->name();
  }
  name_ += ")";
}

Schedule FixpointImprover::improve(const SystemModel& model,
                                   const ReplicationMatrix& x_old,
                                   const ReplicationMatrix& x_new, Schedule schedule,
                                   Rng& rng) const {
  IncrementalEvaluator eval(model, x_old, x_new, std::move(schedule));
  improve_incremental(eval, rng);
  return eval.take_schedule();
}

void FixpointImprover::improve_incremental(IncrementalEvaluator& eval, Rng& rng) const {
  last_rounds_ = 0;
  for (int round = 0; round < max_rounds_; ++round) {
    ++last_rounds_;
    // Inner improvers push their own stage frames; they inherit this round.
    prov::note_round(round);
    const Schedule before = eval.schedule();
    for (const auto& imp : chain_) {
      // Anytime budget poll between chain members.
      if (eval.out_of_budget()) break;
      imp->improve_incremental(eval, rng);
    }
    if (eval.out_of_budget() || eval.schedule() == before) break;
  }
  prov::note_round(-1);
}

}  // namespace rtsp
