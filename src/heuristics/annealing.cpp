#include "heuristics/annealing.hpp"

#include <cmath>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/surgery.hpp"

namespace rtsp {

namespace {

/// Picks the index of a random transfer action, or npos if none exist.
std::size_t random_transfer(const Schedule& h, Rng& rng) {
  std::vector<std::size_t> transfers;
  transfers.reserve(h.size());
  for (std::size_t p = 0; p < h.size(); ++p) {
    if (h[p].is_transfer()) transfers.push_back(p);
  }
  if (transfers.empty()) return npos;
  return transfers[rng.below(transfers.size())];
}

}  // namespace

Schedule AnnealingImprover::improve(const SystemModel& model,
                                    const ReplicationMatrix& x_old,
                                    const ReplicationMatrix& x_new, Schedule schedule,
                                    Rng& rng) const {
  return anneal(model, x_old, x_new, std::move(schedule), rng, nullptr);
}

void AnnealingImprover::improve_incremental(IncrementalEvaluator& eval,
                                            Rng& rng) const {
  // Mirrors the ScheduleImprover default (stage frame covering the reset),
  // but threads the evaluator's meter through so the walk is budget-aware.
  const prov::StageScope stage(prov::StageKind::Improver, name());
  eval.reset(anneal(eval.model(), eval.x_old(), eval.x_new(), eval.take_schedule(),
                    rng, eval.meter()));
}

Schedule AnnealingImprover::anneal(const SystemModel& model,
                                   const ReplicationMatrix& x_old,
                                   const ReplicationMatrix& x_new, Schedule schedule,
                                   Rng& rng, WorkMeter* meter) const {
  if (schedule.empty()) return schedule;
  RTSP_REQUIRE_MSG(Validator::is_valid(model, x_old, x_new, schedule),
                   "annealing requires a valid starting schedule");

  Schedule current = schedule;
  Cost current_cost = schedule_cost(model, current);
  Schedule best = current;
  Cost best_cost = current_cost;

  const double t0 =
      options_.initial_temperature_fraction * static_cast<double>(current_cost);
  const double t_end = t0 * options_.final_temperature_ratio;

  for (std::size_t it = 0; it < options_.iterations; ++it) {
    // Anytime budget poll: one iteration costs roughly a full-schedule
    // re-cost plus a full validation, so charge ~2L before doing the work.
    if (meter != nullptr) {
      meter->charge(2 * current.size() + 1);
      if (meter->exhausted()) break;
    }
    // Geometric cooling from t0 to t_end.
    const double progress = options_.iterations > 1
                                ? static_cast<double>(it) /
                                      static_cast<double>(options_.iterations - 1)
                                : 1.0;
    const double temperature =
        t0 > 0.0 ? t0 * std::pow(t_end / t0 > 0 ? t_end / t0 : 1e-9, progress) : 0.0;

    Schedule cand = current;
    const std::uint64_t kind = rng.below(3);
    if (kind == 0) {
      // Relocate a transfer earlier and re-source it there.
      const std::size_t v = random_transfer(cand, rng);
      if (v == npos) break;
      const std::size_t to = rng.below(v + 1);
      move_action_earlier(cand, v, to);
      const ExecutionState st = simulate_prefix_lenient(model, x_old, cand, to);
      Action& moved = cand[to];
      const auto nearest = model.nearest_replicator(moved.server, moved.object,
                                                    st.placement());
      moved.source = nearest ? *nearest : kDummyServer;
    } else if (kind == 1) {
      // Re-source a transfer in place to its cheapest available source.
      const std::size_t v = random_transfer(cand, rng);
      if (v == npos) break;
      const ExecutionState st = simulate_prefix_lenient(model, x_old, cand, v);
      Action& a = cand[v];
      const auto nearest = model.nearest_replicator(a.server, a.object,
                                                    st.placement());
      const ServerId new_src = nearest ? *nearest : kDummyServer;
      if (new_src == a.source) continue;
      a.source = new_src;
    } else {
      // Cost-neutral adjacent swap.
      if (cand.size() < 2) continue;
      const std::size_t p = rng.below(cand.size() - 1);
      std::swap(cand[p], cand[p + 1]);
    }

    const Cost cand_cost = schedule_cost(model, cand);
    const Cost delta = cand_cost - current_cost;
    bool accept = delta <= 0;
    if (!accept && temperature > 0.0) {
      accept = rng.uniform01() <
               std::exp(-static_cast<double>(delta) / temperature);
    }
    if (!accept) continue;
    if (!Validator::is_valid(model, x_old, x_new, cand)) continue;
    current = std::move(cand);
    current_cost = cand_cost;
    if (current_cost < best_cost) {
      best = current;
      best_cost = current_cost;
    }
  }
  return best;
}

}  // namespace rtsp
