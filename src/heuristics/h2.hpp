// H2 — restore dummy transfers by creating temporary superfluous replicas
// (Sec. 4.1).
//
// For each dummy transfer T_i'kd, H2 finds the nearest preceding deletion
// D_i''k and injects a copy of O_k onto a spare server S_i immediately before
// that deletion; the dummy transfer is then re-sourced to S_i and the
// temporary replica deleted right after. When no server has free space, H2
// tries to create it by pulling forward later deletions of superfluous
// replicas, provided every object keeps at least one replica. Rewrites are
// kept only when they validate and strictly reduce the dummy count.
#pragma once

#include "heuristics/scheduler.hpp"

namespace rtsp {

struct H2Options {
  /// Candidate hosts are ranked by added transfer cost; this caps how many
  /// are tried in the space-creating fallback (all are tried in the direct
  /// free-space path, which is cheap).
  std::size_t max_fallback_hosts = 4;
  /// Safety cap on restart passes.
  int max_passes = 64;
};

class H2Improver final : public ScheduleImprover {
 public:
  explicit H2Improver(H2Options options = {}) : options_(options) {}
  std::string name() const override { return "H2"; }
  Schedule improve(const SystemModel& model, const ReplicationMatrix& x_old,
                   const ReplicationMatrix& x_new, Schedule schedule,
                   Rng& rng) const override;
  void improve_incremental(IncrementalEvaluator& eval, Rng& rng) const override;

 private:
  H2Options options_;
};

}  // namespace rtsp
