#include "heuristics/registry.hpp"

#include <stdexcept>

#include "heuristics/annealing.hpp"
#include "heuristics/ar.hpp"
#include "heuristics/fixpoint.hpp"
#include "heuristics/golcf.hpp"
#include "heuristics/gsdf.hpp"
#include "heuristics/h1.hpp"
#include "heuristics/h2.hpp"
#include "heuristics/op1.hpp"
#include "heuristics/rdf.hpp"
#include "heuristics/sharded_build.hpp"
#include "support/string_util.hpp"

namespace rtsp {

namespace {

BuilderPtr make_builder(const std::string& token) {
  const std::string t = to_lower(token);
  if (t == "ar") return std::make_shared<ArBuilder>();
  if (t == "golcf") return std::make_shared<GolcfBuilder>();
  if (t == "rdf") return std::make_shared<RdfBuilder>();
  if (t == "gsdf") return std::make_shared<GsdfBuilder>();
  // Sharded parallel passes; bit-identical schedules (heuristics/sharded_build.hpp).
  if (t == "rdfp") return std::make_shared<ShardedRdfBuilder>();
  if (t == "gsdfp") return std::make_shared<ShardedGsdfBuilder>();
  return nullptr;
}

ImproverPtr make_improver(const std::string& token) {
  const std::string t = to_lower(token);
  if (t == "h1") return std::make_shared<H1Improver>();
  if (t == "h2") return std::make_shared<H2Improver>();
  if (t == "op1") return std::make_shared<Op1Improver>();
  if (t == "op1p") {
    // OP1 with parallel candidate screening; bitwise-identical schedules.
    Op1Options options;
    options.parallel_screen = true;
    return std::make_shared<Op1Improver>(options);
  }
  if (t == "sa") return std::make_shared<AnnealingImprover>();
  if (t == "h1h2fix") {
    // H1 and H2 alternated to a fixpoint (see heuristics/fixpoint.hpp).
    return std::make_shared<FixpointImprover>(std::vector<ImproverPtr>{
        std::make_shared<H1Improver>(), std::make_shared<H2Improver>()});
  }
  return nullptr;
}

}  // namespace

Pipeline make_pipeline(const std::string& spec) {
  const std::vector<std::string> tokens = split(spec, '+');
  if (tokens.empty() || trim(tokens.front()).empty()) {
    throw std::invalid_argument("empty pipeline spec");
  }
  BuilderPtr builder = make_builder(trim(tokens.front()));
  if (!builder) {
    throw std::invalid_argument("unknown builder '" + tokens.front() + "' in spec '" +
                                spec + "'");
  }
  std::vector<ImproverPtr> improvers;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    ImproverPtr imp = make_improver(trim(tokens[i]));
    if (!imp) {
      throw std::invalid_argument("unknown improver '" + tokens[i] + "' in spec '" +
                                  spec + "'");
    }
    improvers.push_back(std::move(imp));
  }
  return Pipeline(std::move(builder), std::move(improvers));
}

std::vector<std::string> known_builders() {
  return {"AR", "GOLCF", "RDF", "GSDF", "RDFP", "GSDFP"};
}

std::vector<std::string> known_improvers() {
  return {"H1", "H2", "OP1", "OP1P", "SA", "H1H2FIX"};
}

}  // namespace rtsp
