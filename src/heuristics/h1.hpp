// H1 — restore dummy transfers by moving them before a deletion of the same
// object (Sec. 4.1).
//
// For each dummy transfer T_ikd (left to right) the schedule is rewritten so
// the transfer runs just before the nearest preceding deletion D_jk, sourced
// from the deleting server (case i). Capacity violations at S_i are repaired
// by pulling S_i's standalone deletions forward (case ii); if that is not
// enough, deletions whose replicas are still read are pulled too and the
// orphaned readers become dummy transfers that H1 recursively tries to
// restore (case iii / the paper's H'' fallback). A rewrite is kept only when
// it validates and strictly reduces the schedule's dummy-transfer count;
// otherwise the original schedule is kept (the paper's backtracking).
#pragma once

#include "heuristics/scheduler.hpp"

namespace rtsp {

struct H1Options {
  /// Paper behaviour: re-source the moved transfer to the deleting server.
  /// When true, use the cheapest replicator at the insertion point instead
  /// (never worse; benchmarked by bench/ablation_h1_resource).
  bool resource_nearest = false;
  /// Bound on the case-(iii) recursion depth.
  int max_recursion_depth = 16;
  /// Safety cap on restart passes over the schedule.
  int max_passes = 64;
};

class H1Improver final : public ScheduleImprover {
 public:
  explicit H1Improver(H1Options options = {}) : options_(options) {}
  std::string name() const override { return "H1"; }
  Schedule improve(const SystemModel& model, const ReplicationMatrix& x_old,
                   const ReplicationMatrix& x_new, Schedule schedule,
                   Rng& rng) const override;
  void improve_incremental(IncrementalEvaluator& eval, Rng& rng) const override;

 private:
  H1Options options_;
};

}  // namespace rtsp
