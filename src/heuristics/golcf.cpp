#include "heuristics/golcf.hpp"

#include <algorithm>
#include <limits>

#include "core/feasibility.hpp"
#include "heuristics/builder_common.hpp"

namespace rtsp {

Cost golcf_benefit(const ExecutionState& state, ServerId holder, ObjectId object,
                   const std::vector<ServerId>& pending_destinations) {
  const SystemModel& model = state.model();
  const ReplicationMatrix& x = state.placement();
  Cost benefit = 0;
  for (ServerId j : pending_destinations) {
    const auto nearest = model.nearest_replicator(j, object, x);
    if (!nearest || *nearest != holder) continue;
    const LinkCost via_holder = model.costs().at(j, holder);
    const LinkCost via_second = model.second_nearest_source_cost(j, object, x);
    benefit += model.object_size(object) * (via_second - via_holder);
  }
  return benefit;
}

namespace {

/// Deletes superfluous replicas on `i` in increasing-benefit order until
/// object k fits. `pending` holds, per object, the destinations not yet
/// served this run (used by the benefit computation).
void make_space_by_benefit(ExecutionState& state, SuperfluousTracker& tracker,
                           Schedule& h, ServerId i, ObjectId k,
                           const std::vector<std::vector<ServerId>>& pending) {
  const Size needed = state.model().object_size(k);
  while (state.free_space(i) < needed) {
    const auto& candidates = tracker.on(i);
    RTSP_REQUIRE_MSG(!candidates.empty(),
                     "cannot free space on S" << i << " for O" << k);
    ObjectId victim = candidates.front();
    Cost best = std::numeric_limits<Cost>::max();
    for (ObjectId cand : candidates) {
      const Cost b = golcf_benefit(state, i, cand, pending[cand]);
      if (b < best || (b == best && cand < victim)) {
        best = b;
        victim = cand;
      }
    }
    apply_and_push(state, h, Action::remove(i, victim));
    tracker.remove(i, victim);
  }
}

}  // namespace

Schedule GolcfBuilder::build(const SystemModel& model, const ReplicationMatrix& x_old,
                             const ReplicationMatrix& x_new, Rng& rng) const {
  RTSP_REQUIRE_MSG(storage_feasible(model, x_new), "X_new exceeds server capacities");
  const prov::StageScope stage(prov::StageKind::Builder, name());
  const PlacementDelta delta(x_old, x_new);
  ExecutionState state(model, x_old);
  SuperfluousTracker tracker(model.num_servers(), delta);
  Schedule h;

  // Destinations still awaiting each object.
  std::vector<std::vector<ServerId>> pending(model.num_objects());
  for (const Replica& r : delta.outstanding()) pending[r.object].push_back(r.server);

  std::vector<ObjectId> object_order;
  object_order.reserve(model.num_objects());
  for (ObjectId k = 0; k < model.num_objects(); ++k) {
    if (!pending[k].empty()) object_order.push_back(k);
  }
  rng.shuffle(object_order);

  for (ObjectId k : object_order) {
    auto& dests = pending[k];
    while (!dests.empty()) {
      // Destination with the cheapest current source (ties: lowest id).
      std::size_t best_idx = 0;
      LinkCost best_cost = std::numeric_limits<LinkCost>::max();
      for (std::size_t idx = 0; idx < dests.size(); ++idx) {
        const LinkCost c =
            model.nearest_source_cost(dests[idx], k, state.placement());
        if (c < best_cost || (c == best_cost && dests[idx] < dests[best_idx])) {
          best_cost = c;
          best_idx = idx;
        }
      }
      const ServerId i = dests[best_idx];
      dests.erase(dests.begin() + static_cast<std::ptrdiff_t>(best_idx));
      make_space_by_benefit(state, tracker, h, i, k, pending);
      apply_and_push(state, h, nearest_transfer(state, i, k));
    }
  }

  std::vector<Replica> leftovers = tracker.remaining();
  rng.shuffle(leftovers);
  for (const Replica& r : leftovers) {
    apply_and_push(state, h, Action::remove(r.server, r.object));
  }
  return h;
}

}  // namespace rtsp
