#include "heuristics/pipeline.hpp"

#include <chrono>

#include "core/incremental.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace rtsp {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Pipeline::Pipeline(BuilderPtr builder, std::vector<ImproverPtr> improvers)
    : builder_(std::move(builder)), improvers_(std::move(improvers)) {
  RTSP_REQUIRE(builder_ != nullptr);
  name_ = builder_->name();
  for (const auto& imp : improvers_) {
    RTSP_REQUIRE(imp != nullptr);
    name_ += "+" + imp->name();
  }
}

Schedule Pipeline::run(const SystemModel& model, const ReplicationMatrix& x_old,
                       const ReplicationMatrix& x_new, Rng& rng,
                       PipelineTiming* timing) const {
  auto stage_start = std::chrono::steady_clock::now();
  Schedule h;
  {
    OBS_SPAN("build." + builder_->name());
    h = builder_->build(model, x_old, x_new, rng);
  }
  OBS_LOG_DEBUG("builder pass done", obs::log_field("builder", builder_->name()),
                obs::log_field("actions", h.size()),
                obs::log_field("dummies", h.dummy_transfer_count()));
  if (timing) timing->builder_seconds = seconds_since(stage_start);
  if (improvers_.empty()) return h;

  stage_start = std::chrono::steady_clock::now();
  // One evaluator serves the whole improver chain: each improver inherits
  // the previous one's prefix checkpoints and cost/dummy summary instead of
  // re-validating the schedule from scratch.
  IncrementalEvaluator eval(model, x_old, x_new, std::move(h));
  for (const auto& imp : improvers_) {
    OBS_SPAN("improve." + imp->name());
    imp->improve_incremental(eval, rng);
    OBS_TRACE_COUNTER(kObsIncrCandidates);
    OBS_TRACE_COUNTER(kObsIncrAdopts);
    OBS_TRACE_COUNTER(kObsIncrConvergedEarly);
    // cost()/dummy_transfers() are cached summaries on the evaluator, so
    // this per-pass record costs nothing beyond the level gate.
    OBS_LOG_DEBUG("improver pass done", obs::log_field("improver", imp->name()),
                  obs::log_field("cost", static_cast<std::int64_t>(eval.cost())),
                  obs::log_field("dummies", eval.dummy_transfers()));
  }
  if (timing) timing->improver_seconds = seconds_since(stage_start);
  return eval.take_schedule();
}

}  // namespace rtsp
