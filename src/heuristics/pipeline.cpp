#include "heuristics/pipeline.hpp"

#include "support/assert.hpp"

namespace rtsp {

Pipeline::Pipeline(BuilderPtr builder, std::vector<ImproverPtr> improvers)
    : builder_(std::move(builder)), improvers_(std::move(improvers)) {
  RTSP_REQUIRE(builder_ != nullptr);
  name_ = builder_->name();
  for (const auto& imp : improvers_) {
    RTSP_REQUIRE(imp != nullptr);
    name_ += "+" + imp->name();
  }
}

Schedule Pipeline::run(const SystemModel& model, const ReplicationMatrix& x_old,
                       const ReplicationMatrix& x_new, Rng& rng) const {
  Schedule h = builder_->build(model, x_old, x_new, rng);
  if (improvers_.empty()) return h;
  // One evaluator serves the whole improver chain: each improver inherits
  // the previous one's prefix checkpoints and cost/dummy summary instead of
  // re-validating the schedule from scratch.
  IncrementalEvaluator eval(model, x_old, x_new, std::move(h));
  for (const auto& imp : improvers_) {
    imp->improve_incremental(eval, rng);
  }
  return eval.take_schedule();
}

}  // namespace rtsp
