#include "heuristics/pipeline.hpp"

#include "support/assert.hpp"

namespace rtsp {

Pipeline::Pipeline(BuilderPtr builder, std::vector<ImproverPtr> improvers)
    : builder_(std::move(builder)), improvers_(std::move(improvers)) {
  RTSP_REQUIRE(builder_ != nullptr);
  name_ = builder_->name();
  for (const auto& imp : improvers_) {
    RTSP_REQUIRE(imp != nullptr);
    name_ += "+" + imp->name();
  }
}

Schedule Pipeline::run(const SystemModel& model, const ReplicationMatrix& x_old,
                       const ReplicationMatrix& x_new, Rng& rng) const {
  Schedule h = builder_->build(model, x_old, x_new, rng);
  for (const auto& imp : improvers_) {
    h = imp->improve(model, x_old, x_new, std::move(h), rng);
  }
  return h;
}

}  // namespace rtsp
