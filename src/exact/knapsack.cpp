#include "exact/knapsack.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace rtsp {

KnapsackSolution solve_knapsack(const KnapsackInstance& instance) {
  const std::size_t n = instance.count();
  RTSP_REQUIRE(instance.sizes.size() == n);
  RTSP_REQUIRE(instance.capacity >= 0);
  for (std::size_t i = 0; i < n; ++i) {
    RTSP_REQUIRE(instance.benefits[i] > 0 && instance.sizes[i] > 0);
  }
  const std::size_t cap = static_cast<std::size_t>(instance.capacity);

  // dp[c] = best benefit using capacity <= c; take[i][c] records choices.
  std::vector<std::int64_t> dp(cap + 1, 0);
  std::vector<std::vector<bool>> take(n, std::vector<bool>(cap + 1, false));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t sz = static_cast<std::size_t>(instance.sizes[i]);
    const std::int64_t b = instance.benefits[i];
    for (std::size_t c = cap + 1; c-- > sz;) {
      // Strict improvement only: ties prefer NOT taking, which leaves more
      // benefit-optimal subsets of smaller size.
      if (dp[c - sz] + b > dp[c]) {
        dp[c] = dp[c - sz] + b;
        take[i][c] = true;
      }
    }
  }

  KnapsackSolution sol;
  sol.best_benefit = dp[cap];
  sol.chosen.assign(n, false);
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i][c]) {
      sol.chosen[i] = true;
      c -= static_cast<std::size_t>(instance.sizes[i]);
    }
  }
  sol.best_benefit_by_capacity = std::move(dp);
  return sol;
}

std::int64_t KnapsackSolution::min_optimal_size() const {
  for (std::size_t c = 0; c < best_benefit_by_capacity.size(); ++c) {
    if (best_benefit_by_capacity[c] == best_benefit) {
      return static_cast<std::int64_t>(c);
    }
  }
  return 0;
}

}  // namespace rtsp
