// Action enumeration shared by the exact solvers (branch-and-bound and
// uniform-cost search). The restrictions are documented in
// branch_and_bound.hpp.
#pragma once

#include <vector>

#include "core/state.hpp"

namespace rtsp::detail {

/// Valid actions worth branching on from `state` towards `x_new`:
/// destination transfers from the cheapest source, deletions of replicas
/// X_new does not require, and (optionally) staging transfers of objects
/// that still have an outstanding replica somewhere.
std::vector<Action> exact_candidate_actions(const SystemModel& model,
                                            const ReplicationMatrix& x_new,
                                            const ExecutionState& state,
                                            bool allow_staging);

}  // namespace rtsp::detail
