#include "exact/search_common.hpp"

namespace rtsp::detail {

std::vector<Action> exact_candidate_actions(const SystemModel& m,
                                            const ReplicationMatrix& x_new,
                                            const ExecutionState& state,
                                            bool allow_staging) {
  std::vector<Action> out;

  // Which objects still need replicas somewhere?
  std::vector<bool> object_pending(m.num_objects(), false);
  for (ServerId i = 0; i < m.num_servers(); ++i) {
    for (ObjectId k : x_new.objects_on(i)) {
      if (!state.holds(i, k)) object_pending[k] = true;
    }
  }

  // Destination transfers (cheapest source), then deletions, then staging.
  for (ServerId i = 0; i < m.num_servers(); ++i) {
    for (ObjectId k : x_new.objects_on(i)) {
      if (state.holds(i, k)) continue;
      if (state.free_space(i) < m.object_size(k)) continue;
      out.push_back(
          Action::transfer(i, k, m.nearest_source_or_dummy(i, k, state.placement())));
    }
  }
  for (ServerId i = 0; i < m.num_servers(); ++i) {
    for (ObjectId k = 0; k < m.num_objects(); ++k) {
      // Never delete a replica X_new requires (documented restriction).
      if (state.holds(i, k) && !x_new.test(i, k)) {
        out.push_back(Action::remove(i, k));
      }
    }
  }
  if (allow_staging) {
    for (ObjectId k = 0; k < m.num_objects(); ++k) {
      if (!object_pending[k]) continue;
      for (ServerId i = 0; i < m.num_servers(); ++i) {
        if (state.holds(i, k) || x_new.test(i, k)) continue;
        if (state.free_space(i) < m.object_size(k)) continue;
        out.push_back(Action::transfer(
            i, k, m.nearest_source_or_dummy(i, k, state.placement())));
      }
    }
  }
  return out;
}

}  // namespace rtsp::detail
