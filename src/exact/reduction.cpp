#include "exact/reduction.hpp"

#include <numeric>

#include "support/assert.hpp"
#include "topology/shortest_paths.hpp"

namespace rtsp {

ReducedInstance reduce_knapsack_to_rtsp(const KnapsackInstance& knapsack) {
  const std::size_t n = knapsack.count();
  RTSP_REQUIRE(n >= 1);
  RTSP_REQUIRE(knapsack.sizes.size() == n);

  Cost size_product = 1;
  Size size_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    RTSP_REQUIRE(knapsack.sizes[i] > 0 && knapsack.benefits[i] > 0);
    RTSP_REQUIRE_MSG(size_product <= (1LL << 40) / knapsack.sizes[i],
                     "knapsack sizes too large for the reduction gadget");
    size_product *= knapsack.sizes[i];
    size_sum += knapsack.sizes[i];
  }

  // Objects O_0..O_{n-1} are the knapsack objects; O_n is the big object.
  std::vector<Size> sizes(knapsack.sizes.begin(), knapsack.sizes.end());
  sizes.push_back(size_sum);
  ObjectCatalog objects{std::move(sizes)};
  const ObjectId big = static_cast<ObjectId>(n);

  // Servers 0..n-1 hold one knapsack object each; server n is the paper's
  // S_{n+1} (capacity S + sum s), server n+1 is S_{n+2} (capacity sum s,
  // holding every knapsack object), server n+2 is S_{n+3} (holds O_big).
  const ServerId sn1 = static_cast<ServerId>(n);
  const ServerId sn2 = static_cast<ServerId>(n + 1);
  const ServerId sn3 = static_cast<ServerId>(n + 2);
  std::vector<Size> caps(n + 3);
  for (std::size_t i = 0; i < n; ++i) caps[i] = knapsack.sizes[i];
  caps[sn1] = knapsack.capacity + size_sum;
  caps[sn2] = size_sum;
  caps[sn3] = size_sum;

  // Links per Fig. 2: S_i -- S_{n+1} at b'_i, S_{n+1} -- S_{n+2} at 1,
  // S_{n+3} -- S_{n+2} at sum(b'_i + 1). All other costs follow shortest
  // paths through this tree.
  std::vector<Cost> scaled(n);
  Graph g(n + 3);
  Cost b_prime_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = knapsack.benefits[i] * (size_product / knapsack.sizes[i]);
    g.add_edge(i, sn1, scaled[i]);
    b_prime_sum += scaled[i] + 1;
  }
  g.add_edge(sn1, sn2, 1);
  g.add_edge(sn3, sn2, b_prime_sum);
  CostMatrix costs = CostMatrix::from_graph_shortest_paths(g);

  ReplicationMatrix x_old(n + 3, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    x_old.set(static_cast<ServerId>(i), static_cast<ObjectId>(i));
    x_old.set(sn2, static_cast<ObjectId>(i));
  }
  x_old.set(sn1, big);
  x_old.set(sn3, big);

  // X_new: S_{n+1} and S_{n+2} interchange their contents.
  ReplicationMatrix x_new = x_old;
  x_new.clear(sn1, big);
  x_new.set(sn2, big);
  for (std::size_t i = 0; i < n; ++i) {
    x_new.clear(sn2, static_cast<ObjectId>(i));
    x_new.set(sn1, static_cast<ObjectId>(i));
  }

  SystemModel model(ServerCatalog(std::move(caps)), std::move(objects),
                    std::move(costs), 1.0);
  return ReducedInstance{Instance{std::move(model), std::move(x_old), std::move(x_new)},
                         std::move(scaled), size_product};
}

Cost reduction_threshold(const KnapsackInstance& knapsack, std::int64_t k) {
  Cost size_sum = 0;
  Cost benefit_sum = 0;
  Cost size_product = 1;
  for (std::size_t i = 0; i < knapsack.count(); ++i) {
    size_sum += knapsack.sizes[i];
    benefit_sum += knapsack.benefits[i];
    size_product *= knapsack.sizes[i];
  }
  return size_sum + (benefit_sum - k) * size_product + knapsack.capacity;
}

Cost reduced_optimal_cost(const KnapsackInstance& knapsack) {
  const KnapsackSolution sol = solve_knapsack(knapsack);
  Cost size_sum = 0;
  Cost benefit_sum = 0;
  Cost size_product = 1;
  for (std::size_t i = 0; i < knapsack.count(); ++i) {
    size_sum += knapsack.sizes[i];
    benefit_sum += knapsack.benefits[i];
    size_product *= knapsack.sizes[i];
  }
  // Schedule: ship W* into S_{n+1}'s slack (cost sum_{W*} s_i), move the big
  // object across the unit link (cost sum s), then fetch the rest from the
  // spoke servers (cost sum_{not W*} b'_i s_i = Prod(s) * b_i each).
  return sol.min_optimal_size() + size_sum +
         size_product * (benefit_sum - sol.best_benefit);
}

}  // namespace rtsp
