#include "exact/uniform_cost_search.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "core/feasibility.hpp"
#include "core/state.hpp"
#include "exact/search_common.hpp"
#include "support/rng.hpp"  // mix64

namespace rtsp {

namespace {

using Key = std::vector<std::uint64_t>;

struct KeyHash {
  std::size_t operator()(const Key& words) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t w : words) h = mix64(h, w);
    return static_cast<std::size_t>(h);
  }
};

struct NodeInfo {
  Cost best_cost = 0;
  bool settled = false;
  Key predecessor;   ///< empty for the start state
  Action via{};      ///< action taken from the predecessor
};

struct QueueEntry {
  Cost cost;
  Key key;
  bool operator>(const QueueEntry& o) const { return cost > o.cost; }
};

}  // namespace

UcsResult solve_exact_ucs(const Instance& instance, const UcsOptions& options) {
  RTSP_REQUIRE(storage_feasible(instance.model, instance.x_new));
  const SystemModel& model = instance.model;

  std::unordered_map<Key, NodeInfo, KeyHash> nodes;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> frontier;

  const Key start = instance.x_old.words();
  const Key goal = instance.x_new.words();
  nodes[start] = NodeInfo{};
  frontier.push({0, start});

  UcsResult result;
  while (!frontier.empty()) {
    const QueueEntry top = frontier.top();
    frontier.pop();
    NodeInfo& info = nodes[top.key];
    if (info.settled || top.cost != info.best_cost) continue;  // stale
    info.settled = true;
    ++result.states_expanded;
    if (result.states_expanded > options.max_states) break;

    if (top.key == goal) {
      // Reconstruct the action path backwards.
      std::vector<Action> actions;
      Key cursor = top.key;
      while (true) {
        const NodeInfo& n = nodes[cursor];
        if (n.predecessor.empty() && cursor == start) break;
        actions.push_back(n.via);
        cursor = n.predecessor;
      }
      std::reverse(actions.begin(), actions.end());
      result.schedule = Schedule(std::move(actions));
      result.cost = top.cost;
      result.proved_optimal = true;
      return result;
    }

    // Rebuild the replication state from the key's row-major bit words
    // (tiny instances only, so the O(M*N) rebuild is fine).
    ReplicationMatrix x(instance.x_old.num_servers(), instance.x_old.num_objects());
    const std::size_t words_per_row = top.key.size() / x.num_servers();
    for (ServerId i = 0; i < x.num_servers(); ++i) {
      for (ObjectId k = 0; k < x.num_objects(); ++k) {
        const std::uint64_t word =
            top.key[static_cast<std::size_t>(i) * words_per_row + (k >> 6)];
        if ((word >> (k & 63)) & 1u) x.set(i, k);
      }
    }
    const ExecutionState state(model, x);

    for (const Action& a :
         detail::exact_candidate_actions(model, instance.x_new, state,
                                         options.allow_staging)) {
      const Cost next_cost = top.cost + action_cost(model, a);
      ExecutionState next = state;
      next.apply(a);
      const Key next_key = next.placement().words();
      auto [it, inserted] = nodes.try_emplace(next_key);
      NodeInfo& n = it->second;
      if (!inserted && (n.settled || next_cost >= n.best_cost)) continue;
      n.best_cost = next_cost;
      n.predecessor = top.key;
      n.via = a;
      frontier.push({next_cost, next_key});
    }
  }

  // Budget exhausted (or frontier dry, which cannot happen for feasible
  // instances): fall back to the worst-case certificate.
  result.schedule = worst_case_schedule(model, instance.x_old, instance.x_new);
  result.cost = schedule_cost(model, result.schedule);
  result.proved_optimal = false;
  return result;
}

}  // namespace rtsp
