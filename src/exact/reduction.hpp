// The Sec. 3.4 polynomial reduction from (0,1) Knapsack-decision to
// RTSP-decision, used to validate the NP-completeness construction and to
// cross-check the exact solver: the optimal RTSP cost of the reduced
// instance is Sum(s_i) + Sum_{i in W*} s_i + Prod(s) * Sum_{i notin W*} b_i
// for a benefit-optimal, size-minimal knapsack subset W*.
#pragma once

#include "exact/knapsack.hpp"
#include "workload/scenario.hpp"

namespace rtsp {

struct ReducedInstance {
  Instance instance;  ///< the RTSP problem built from the knapsack input
  /// Per-object link costs b'_i = b_i * Prod(s) / s_i (position i of the
  /// paper's link (ii)); exposed for assertions.
  std::vector<Cost> scaled_benefits;
  Cost size_product = 1;  ///< Prod over all knapsack sizes
};

/// Builds the reduced RTSP instance. Sizes must be small enough that
/// Prod(s) * max(b) fits in Cost (the construction is for analysis and
/// testing, not scale).
ReducedInstance reduce_knapsack_to_rtsp(const KnapsackInstance& knapsack);

/// The decision threshold of the reduction: a valid schedule of cost
/// <= threshold exists iff the knapsack instance admits benefit >= K.
Cost reduction_threshold(const KnapsackInstance& knapsack, std::int64_t k);

/// Closed-form optimal RTSP cost of the reduced instance, computed from the
/// DP knapsack optimum (benefit-optimal, then size-minimal subset).
Cost reduced_optimal_cost(const KnapsackInstance& knapsack);

}  // namespace rtsp
