// Exact (branch-and-bound) RTSP scheduler for small instances.
//
// Searches sequences of valid actions from X_old to X_new with cost-based
// pruning, an admissible per-state lower bound, and memoization of the best
// cost at which each replication state was reached. Used to measure the
// optimality gap of the heuristics and to validate the Sec.-3.4 reduction.
//
// Search-space restrictions (documented, standard for this problem):
//   * transfers only involve objects that still have an outstanding replica
//     (staging copies onto third-party servers are allowed);
//   * a replica that X_new requires is never deleted once present;
//   * every transfer uses the cheapest currently available source (never
//     worse, since cost depends only on the source link);
//   * dummy sources are used only when no real replicator exists.
#pragma once

#include <cstdint>
#include <optional>

#include "core/cost_model.hpp"
#include "core/schedule.hpp"
#include "workload/scenario.hpp"

namespace rtsp {

struct BnbOptions {
  /// Abort after expanding this many nodes; `proved_optimal` then reports
  /// false and the best incumbent found so far is returned.
  std::uint64_t max_nodes = 5'000'000;
  /// Allow transfers to servers that are neither destinations nor X_old
  /// holders (temporary staging replicas). Enlarges the space considerably.
  bool allow_staging = true;
  /// Optional initial incumbent (e.g. a heuristic schedule's cost) to
  /// tighten pruning from the start.
  std::optional<Cost> initial_upper_bound;
};

struct BnbResult {
  Schedule schedule;      ///< best schedule found (valid w.r.t. the instance)
  Cost cost = 0;          ///< its implementation cost
  bool proved_optimal = false;
  std::uint64_t nodes_expanded = 0;
};

/// Runs the search. RTSP_REQUIREs that X_new is storage feasible (the
/// extended problem then always has a solution).
BnbResult solve_exact(const Instance& instance, const BnbOptions& options = {});

}  // namespace rtsp
