#include "exact/branch_and_bound.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/delta.hpp"
#include "core/feasibility.hpp"
#include "core/state.hpp"
#include "exact/search_common.hpp"
#include "support/rng.hpp"  // mix64 for word hashing

namespace rtsp {

namespace {

struct WordsHash {
  std::size_t operator()(const std::vector<std::uint64_t>& words) const {
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (std::uint64_t w : words) h = mix64(h, w);
    return static_cast<std::size_t>(h);
  }
};

class Search {
 public:
  Search(const Instance& inst, const BnbOptions& opts)
      : inst_(inst), opts_(opts), state_(inst.model, inst.x_old) {}

  BnbResult run() {
    RTSP_REQUIRE(storage_feasible(inst_.model, inst_.x_new));
    // Incumbent: the always-valid worst-case schedule, or the caller's bound.
    best_schedule_ = worst_case_schedule(inst_.model, inst_.x_old, inst_.x_new);
    best_cost_ = schedule_cost(inst_.model, best_schedule_);
    if (opts_.initial_upper_bound && *opts_.initial_upper_bound < best_cost_) {
      // A tighter external bound prunes more, but we keep the worst-case
      // schedule as the incumbent certificate until something better shows.
      best_cost_ = std::min(best_cost_, *opts_.initial_upper_bound + 1);
    }
    dfs(0);
    BnbResult result;
    result.schedule = std::move(best_schedule_);
    result.cost = schedule_cost(inst_.model, result.schedule);
    result.proved_optimal = !budget_exhausted_;
    result.nodes_expanded = nodes_;
    return result;
  }

 private:
  void dfs(Cost cost_so_far) {
    if (budget_exhausted_) return;
    if (++nodes_ > opts_.max_nodes) {
      budget_exhausted_ = true;
      return;
    }
    if (state_.placement() == inst_.x_new) {
      if (cost_so_far < best_cost_ ||
          (cost_so_far == best_cost_ && path_.size() < best_schedule_.size())) {
        best_cost_ = cost_so_far;
        best_schedule_ = path_;
      }
      return;
    }
    if (cost_so_far + lower_bound() >= best_cost_) return;

    const auto& key = state_.placement().words();
    auto [it, inserted] = visited_.try_emplace(key, cost_so_far);
    if (!inserted) {
      if (it->second <= cost_so_far) return;
      it->second = cost_so_far;
    }

    for (const Action& a : candidate_actions()) {
      state_.apply(a);
      path_.push_back(a);
      dfs(cost_so_far + action_cost(inst_.model, a));
      // Undo via the exact inverse (always applicable leniently).
      if (a.is_transfer()) {
        state_.apply_lenient(Action::remove(a.server, a.object));
      } else {
        state_.apply_lenient(Action::transfer(a.server, a.object, kDummyServer));
      }
      path_.erase(path_.size() - 1);
      if (budget_exhausted_) return;
    }
  }

  /// Admissible bound: each missing X_new replica costs at least its size
  /// times the cheapest link to any server that could ever provide it.
  Cost lower_bound() const {
    const SystemModel& m = inst_.model;
    Cost lb = 0;
    for (ServerId i = 0; i < m.num_servers(); ++i) {
      for (ObjectId k : inst_.x_new.objects_on(i)) {
        if (state_.holds(i, k)) continue;
        LinkCost best = m.dummy_link_cost();
        for (ServerId j = 0; j < m.num_servers(); ++j) {
          if (j == i) continue;
          if (state_.holds(j, k) || inst_.x_new.test(j, k)) {
            best = std::min(best, m.costs().at(i, j));
          }
        }
        lb += m.object_size(k) * best;
      }
    }
    return lb;
  }

  std::vector<Action> candidate_actions() const {
    return detail::exact_candidate_actions(inst_.model, inst_.x_new, state_,
                                           opts_.allow_staging);
  }

  const Instance& inst_;
  const BnbOptions& opts_;
  ExecutionState state_;
  Schedule path_;
  Schedule best_schedule_;
  Cost best_cost_ = 0;
  std::uint64_t nodes_ = 0;
  bool budget_exhausted_ = false;
  std::unordered_map<std::vector<std::uint64_t>, Cost, WordsHash> visited_;
};

}  // namespace

BnbResult solve_exact(const Instance& instance, const BnbOptions& options) {
  Search search(instance, options);
  return search.run();
}

}  // namespace rtsp
