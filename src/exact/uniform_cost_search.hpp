// Uniform-cost (Dijkstra) search over replication states — a second,
// independent exact method used to cross-check the branch-and-bound solver
// on tiny instances.
//
// States are replication matrices; edges are valid actions under the same
// restrictions as branch_and_bound.hpp (cheapest-source transfers, optional
// staging, never delete an X_new replica once present). Deletions cost 0,
// so this is Dijkstra with zero-weight edges — correct because every cycle
// contains a positive-cost transfer. Memory grows with the explored state
// count; use only where branch-and-bound is also feasible.
#pragma once

#include "exact/branch_and_bound.hpp"

namespace rtsp {

struct UcsOptions {
  std::uint64_t max_states = 2'000'000;  ///< abort bound on explored states
  bool allow_staging = true;
};

struct UcsResult {
  Schedule schedule;
  Cost cost = 0;
  bool proved_optimal = false;
  std::uint64_t states_expanded = 0;
};

/// Dijkstra from X_old to X_new over the action graph. RTSP_REQUIREs that
/// X_new is storage feasible.
UcsResult solve_exact_ucs(const Instance& instance, const UcsOptions& options = {});

}  // namespace rtsp
