// (0,1) Knapsack: the problem RTSP-decision is reduced from (Sec. 3.4).
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace rtsp {

struct KnapsackInstance {
  std::vector<std::int64_t> benefits;  ///< b_i > 0
  std::vector<std::int64_t> sizes;     ///< s_i > 0
  std::int64_t capacity = 0;           ///< S >= 0

  std::size_t count() const { return benefits.size(); }
};

struct KnapsackSolution {
  std::int64_t best_benefit = 0;
  std::vector<bool> chosen;  ///< a maximizing subset W
  /// best_benefit_by_capacity[c] = optimal benefit with total size <= c.
  /// The smallest c achieving best_benefit is the minimum total size over
  /// all benefit-optimal subsets (used by the RTSP reduction's closed form).
  std::vector<std::int64_t> best_benefit_by_capacity;

  std::int64_t min_optimal_size() const;
};

/// Exact DP over capacity, O(n * S) time, with solution reconstruction.
KnapsackSolution solve_knapsack(const KnapsackInstance& instance);

}  // namespace rtsp
