#include "exec/fault_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rtsp::exec {

namespace {

[[noreturn]] void spec_fail(const std::string& why) {
  throw std::invalid_argument("fault spec: " + why);
}

void check_window(Tick begin, Tick end, const char* what, std::size_t index) {
  if (begin < 0 || end < begin) {
    std::ostringstream os;
    os << what << " #" << index << " has invalid window [" << begin << ", " << end
       << ")";
    spec_fail(os.str());
  }
}

}  // namespace

void validate_spec(const FaultSpec& spec) {
  if (spec.transient_failure_rate < 0.0 || spec.transient_failure_rate > 1.0) {
    spec_fail("transient_failure_rate must be in [0, 1]");
  }
  for (std::size_t i = 0; i < spec.offline.size(); ++i) {
    check_window(spec.offline[i].begin, spec.offline[i].end, "offline window", i);
  }
  for (std::size_t i = 0; i < spec.degraded_links.size(); ++i) {
    const LinkDegradation& d = spec.degraded_links[i];
    check_window(d.begin, d.end, "link degradation", i);
    if (!(d.factor > 0.0)) {
      std::ostringstream os;
      os << "link degradation #" << i << " has non-positive factor " << d.factor;
      spec_fail(os.str());
    }
    if (d.dest == d.source) {
      std::ostringstream os;
      os << "link degradation #" << i << " degrades a self-link (S" << d.dest << ")";
      spec_fail(os.str());
    }
  }
  for (std::size_t i = 0; i < spec.losses.size(); ++i) {
    if (spec.losses[i].at < 0) {
      std::ostringstream os;
      os << "replica loss #" << i << " has negative time " << spec.losses[i].at;
      spec_fail(os.str());
    }
  }
}

void validate_spec(const SystemModel& model, const FaultSpec& spec) {
  validate_spec(spec);
  const auto check_server = [&](ServerId s, const char* what, std::size_t index) {
    if (s >= model.num_servers()) {
      std::ostringstream os;
      os << what << " #" << index << " names server S" << s << " but the model has "
         << model.num_servers() << " servers (faults cannot target the dummy)";
      spec_fail(os.str());
    }
  };
  for (std::size_t i = 0; i < spec.offline.size(); ++i) {
    check_server(spec.offline[i].server, "offline window", i);
  }
  for (std::size_t i = 0; i < spec.degraded_links.size(); ++i) {
    check_server(spec.degraded_links[i].dest, "link degradation (dest)", i);
    check_server(spec.degraded_links[i].source, "link degradation (source)", i);
  }
  for (std::size_t i = 0; i < spec.losses.size(); ++i) {
    check_server(spec.losses[i].server, "replica loss", i);
    if (spec.losses[i].object >= model.num_objects()) {
      std::ostringstream os;
      os << "replica loss #" << i << " names object O" << spec.losses[i].object
         << " but the model has " << model.num_objects() << " objects";
      spec_fail(os.str());
    }
  }
}

FaultOracle::FaultOracle(const FaultSpec& spec) : spec_(&spec), losses_(spec.losses) {
  std::sort(losses_.begin(), losses_.end(),
            [](const ReplicaLoss& a, const ReplicaLoss& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.server != b.server) return a.server < b.server;
              return a.object < b.object;
            });
  for (const OfflineWindow& w : spec.offline) horizon_ = std::max(horizon_, w.end);
  for (const ReplicaLoss& l : losses_) horizon_ = std::max(horizon_, l.at);
}

Tick FaultOracle::online_at(ServerId server, Tick now) const {
  if (is_dummy(server)) return now;
  // Chained windows can force repeated hops; iterate to a fixpoint.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const OfflineWindow& w : spec_->offline) {
      if (w.server == server && w.begin <= now && now < w.end) {
        now = w.end;
        moved = true;
      }
    }
  }
  return now;
}

double FaultOracle::link_factor(ServerId dest, ServerId source, Tick now) const {
  if (is_dummy(source)) return 1.0;
  double factor = 1.0;
  for (const LinkDegradation& d : spec_->degraded_links) {
    if (d.dest == dest && d.source == source && d.begin <= now && now < d.end) {
      factor *= d.factor;
    }
  }
  return factor;
}

const ReplicaLoss* FaultOracle::next_loss_due(Tick now) const {
  if (next_loss_ >= losses_.size()) return nullptr;
  const ReplicaLoss& l = losses_[next_loss_];
  return l.at <= now ? &l : nullptr;
}

void FaultOracle::pop_loss() {
  RTSP_REQUIRE(next_loss_ < losses_.size());
  ++next_loss_;
}

}  // namespace rtsp::exec
