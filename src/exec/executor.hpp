// Fault-tolerant schedule execution (the "live system" the paper's plans are
// meant for): replays a delivered Schedule against the SystemModel as a
// sequence of timed transfer attempts under a deterministic fault injector,
// with bounded retries, residual replanning through the builder/improver
// registry, and graceful degradation to dummy-server transfers.
//
// Semantics and termination:
//   * The executor is serial and event-driven over a virtual clock in cost
//     ticks (a transfer paying C occupies C ticks; backoff and offline
//     stalls also advance the clock).
//   * Before each attempt, due replica losses are applied (recorded as
//     forced deletions) and the action is re-validated. An invalid action —
//     its source lost, its space stolen, an emerging Fig.-1 deadlock —
//     aborts the tail: the executor snapshots the residual problem
//     (core/residual) and replans (X_mid, X_new) with the configured
//     pipeline.
//   * A transfer attempt from a real source fails transiently with the
//     spec's probability; the attempt's cost is still paid. Failures retry
//     under the RetryPolicy; when retries are exhausted the action fails
//     permanently, which also triggers a replan. A destination/source inside
//     an offline window stalls the clock to the window's end first — dark
//     servers delay, they do not burn retries.
//   * The same (dest, object) transfer failing permanently `degrade_after`
//     times is thereafter forced through the dummy server, which is outside
//     the fault model (always online, never fails): that guarantees forward
//     progress. If the replan budget runs out, the executor fast-forwards
//     past the fault horizon and drains the remainder as the residual
//     worst-case plan (delete superfluous, fetch outstanding from dummy) —
//     always valid when X_new is storage-feasible.
// Hence every unbudgeted run terminates with placement == X_new, and the
// recorded effective action sequence (successful applications plus forced
// loss deletions) replays cleanly through Validator::validate. Under a
// fault-free spec the effective sequence is the input schedule and the cost
// paid equals its planned cost exactly. With budget_ticks > 0 the run may
// instead stop early at an action boundary (budget_exhausted); the
// effective prefix then validates against (X_old, final_placement) — the
// contract `rtsp serve` uses for partial-convergence checkpoints.
//
// Determinism: all randomness flows from one Rng seeded with
// mix64(spec.seed, options.seed); replans use per-replan derived streams.
// Same (instance, schedule, spec, options) => bit-identical attempt log,
// effective schedule, final state and cost totals, with or without obs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/state.hpp"
#include "core/system.hpp"
#include "exec/fault_model.hpp"
#include "exec/retry_policy.hpp"
#include "obs/journal.hpp"
#include "obs/provenance.hpp"
#include "obs/sampler.hpp"

namespace rtsp::exec {

enum class AttemptOutcome : std::uint8_t {
  Success,           ///< action applied (possibly after a stall)
  TransientFailure,  ///< in-flight failure; cost paid, retry or give up
};

const char* to_string(AttemptOutcome o);

/// One timed attempt of one action. `action` is the action as attempted —
/// a degraded attempt already carries the dummy source.
struct Attempt {
  Action action;
  int attempt = 1;        ///< 1-based attempt number for this action
  Tick at = 0;            ///< clock when the attempt started (after stalls)
  AttemptOutcome outcome = AttemptOutcome::Success;
  Cost cost_paid = 0;     ///< includes degradation factors; 0 for deletions
  Tick stall = 0;         ///< offline wait immediately before this attempt
  Tick backoff = 0;       ///< backoff wait charged after a failure

  bool operator==(const Attempt&) const = default;
};

/// Why a replan was triggered.
enum class ReplanReason : std::uint8_t {
  RetriesExhausted,  ///< an action failed permanently
  InvalidAction,     ///< the tail no longer validates against the live state
  EndStateMismatch,  ///< tail drained but placement != X_new (late losses)
};

const char* to_string(ReplanReason r);

struct ReplanEvent {
  Tick at = 0;
  ReplanReason reason = ReplanReason::RetriesExhausted;
  Action trigger;            ///< offending action (unused for EndStateMismatch)
  std::size_t dropped = 0;   ///< planned tail actions discarded
  std::size_t added = 0;     ///< actions in the replanned tail
  Cost residual_lower_bound = 0;
  double seconds = 0.0;      ///< replan wall time (excluded from determinism)
};

struct ExecutorOptions {
  RetryPolicy retry;
  /// Pipeline spec for residual replans, resolved via heuristics/registry.
  std::string replan_algo = "GOLCF+H1+H2+OP1";
  std::size_t max_replans = 16;
  /// Permanent failures of the same (dest, object) transfer before the
  /// executor forces it through the dummy server.
  std::size_t degrade_after = 2;
  std::uint64_t seed = 1;
  /// Soft virtual-clock budget in ticks; 0 = unlimited. Checked at action
  /// boundaries only: the action in flight when the clock crosses the
  /// budget still completes (and one attempt may overshoot by its own
  /// cost), then the run stops with budget_exhausted set and the partial
  /// state in final_placement. The effective prefix still validates
  /// against (X_old, final_placement), which is what lets `rtsp serve`
  /// checkpoint a partially-converged epoch and carry it forward. The
  /// last-resort drain path ignores the budget (it must terminate).
  Tick budget_ticks = 0;
  /// Record per-action provenance (stages PLAN / REPLAN#n / DEGRADED /
  /// FAULT-LOSS plus dummy-transfer root causes) for `rtsp explain`.
  bool record_provenance = false;
  /// Optional flight-recorder sinks. When non-null, the run journals typed
  /// events (attempt start/finish, faults, retries, offline windows, losses,
  /// replans, degradations, drain) stamped with the virtual clock, and
  /// samples the metrics registry at attempt/retry/replan boundaries. Like
  /// record_provenance these are runtime-gated (they work under
  /// RTSP_OBS=OFF) and never observed by the control flow, so the run is
  /// bit-identical with or without them.
  obs::Journal* journal = nullptr;
  obs::MetricsSampler* sampler = nullptr;
};

/// Everything the run produced. `effective` is the applied action sequence
/// (transfers with the source actually used, plus forced loss deletions);
/// it is valid w.r.t. (X_old, X_new) by construction.
struct ExecutionReport {
  std::vector<Attempt> attempts;
  std::vector<ReplanEvent> replans;
  Schedule effective;
  ReplicationMatrix final_placement;

  Cost planned_cost = 0;    ///< schedule_cost of the input plan
  Cost effective_cost = 0;  ///< nominal cost of the effective schedule
  Cost actual_cost = 0;     ///< ticks actually paid, incl. failed attempts

  std::size_t retries = 0;
  std::size_t transient_failures = 0;
  std::size_t degraded_transfers = 0;  ///< transfers forced onto the dummy
  std::size_t loss_deletions = 0;      ///< replica losses applied
  std::size_t planned_dummy_transfers = 0;
  std::size_t effective_dummy_transfers = 0;

  Tick finished_at = 0;
  Tick total_stall = 0;
  Tick total_backoff = 0;
  bool reached_goal = false;  ///< final_placement == X_new (guaranteed
                              ///< whenever budget_ticks was 0)
  bool budget_exhausted = false;  ///< stopped at the tick budget, not at X_new

  /// Per-action provenance for `effective` when options.record_provenance;
  /// empty otherwise. Entries are parallel to `effective`.
  prov::Provenance provenance;

  /// actual_cost / planned_cost (1.0 for an empty plan executed cleanly).
  double cost_inflation() const;
};

/// Executes `plan` for (x_old -> x_new) under `faults`. Throws
/// std::invalid_argument on a malformed spec/policy, on plan actions with
/// out-of-range ids, and when X_new is not storage-feasible (no terminating
/// degradation exists without the feasibility guarantee).
ExecutionReport execute_schedule(const SystemModel& model,
                                 const ReplicationMatrix& x_old,
                                 const ReplicationMatrix& x_new,
                                 const Schedule& plan, const FaultSpec& faults,
                                 const ExecutorOptions& options);

}  // namespace rtsp::exec
