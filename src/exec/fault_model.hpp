// Deterministic fault model for schedule execution: a declarative FaultSpec
// (what can go wrong, when) plus the FaultOracle the executor queries while
// replaying a schedule against a virtual clock.
//
// Time is measured in abstract ticks on the same scale as implementation
// cost: a transfer that costs C occupies C ticks of the serial executor (a
// unit-bandwidth link), deletions are instantaneous. All randomness (the
// transient-failure draws) comes from the executor's seeded Rng, so a given
// (instance, schedule, spec, seed) replays bit-identically.
//
// The dummy server is deliberately outside the fault model: it stands for
// the always-available origin/archive tier, so dummy-sourced transfers never
// fail transiently and the dummy is never offline. That asymmetry is what
// makes graceful degradation (falling back to dummy transfers) terminate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/types.hpp"

namespace rtsp::exec {

/// Virtual time in cost units (see header comment).
using Tick = std::int64_t;

/// Server `server` is unreachable (as source or destination) in [begin, end).
struct OfflineWindow {
  ServerId server = 0;
  Tick begin = 0;
  Tick end = 0;

  bool operator==(const OfflineWindow&) const = default;
};

/// Directed link dest <- source costs `factor` times its nominal per-unit
/// cost while the clock is in [begin, end).
struct LinkDegradation {
  ServerId dest = 0;
  ServerId source = 0;
  double factor = 1.0;
  Tick begin = 0;
  Tick end = 0;

  bool operator==(const LinkDegradation&) const = default;
};

/// The replica (server, object) is permanently destroyed at time `at` —
/// disk loss. If the server still holds the object when the clock reaches
/// `at`, the executor records a forced deletion; planned transfers sourced
/// there become invalid and trigger a replan.
struct ReplicaLoss {
  ServerId server = 0;
  ObjectId object = 0;
  Tick at = 0;

  bool operator==(const ReplicaLoss&) const = default;
};

/// Everything that will go wrong during one execution, declaratively.
struct FaultSpec {
  std::uint64_t seed = 1;  ///< stream for the transient-failure draws
  /// Probability that one attempt of a real-source transfer fails in flight
  /// (the attempt's cost is still paid — a wasted transmission). In [0, 1].
  double transient_failure_rate = 0.0;
  std::vector<OfflineWindow> offline;
  std::vector<LinkDegradation> degraded_links;
  std::vector<ReplicaLoss> losses;

  /// True when executing under this spec cannot deviate from the plan.
  bool fault_free() const {
    return transient_failure_rate == 0.0 && offline.empty() &&
           degraded_links.empty() && losses.empty();
  }

  bool operator==(const FaultSpec&) const = default;
};

/// Structural validation independent of any instance: rate in [0, 1],
/// windows ordered, factors positive, times non-negative. Throws
/// std::invalid_argument naming the offending entry.
void validate_spec(const FaultSpec& spec);

/// Validation against a concrete model: every server/object id must exist
/// (the dummy server is not addressable by faults). Also runs validate_spec.
void validate_spec(const SystemModel& model, const FaultSpec& spec);

/// The executor's query interface over a FaultSpec. Losses are consumed in
/// time order via next_loss()/pop_loss(); window queries are linear scans —
/// fault specs are small compared to schedules.
class FaultOracle {
 public:
  explicit FaultOracle(const FaultSpec& spec);

  /// Earliest time >= now at which `server` is online. kDummyServer is
  /// always online.
  Tick online_at(ServerId server, Tick now) const;

  /// Cost multiplier of the link dest <- source at time `now` (product of
  /// all covering degradation windows; 1.0 outside them and for the dummy).
  double link_factor(ServerId dest, ServerId source, Tick now) const;

  /// The next unconsumed loss event with at <= now, or nullptr.
  const ReplicaLoss* next_loss_due(Tick now) const;
  void pop_loss();

  /// End of the latest offline window / largest loss time: fast-forwarding
  /// past this point makes the remaining timeline fault-free (except the
  /// transient rate, which never expires).
  Tick horizon() const { return horizon_; }

  double transient_failure_rate() const { return spec_->transient_failure_rate; }

 private:
  const FaultSpec* spec_;
  std::vector<ReplicaLoss> losses_;  ///< sorted by (at, server, object)
  std::size_t next_loss_ = 0;
  Tick horizon_ = 0;
};

}  // namespace rtsp::exec
