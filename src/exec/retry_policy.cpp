#include "exec/retry_policy.hpp"

#include <cmath>
#include <stdexcept>

namespace rtsp::exec {

void validate_policy(const RetryPolicy& policy) {
  if (policy.max_retries < 0) {
    throw std::invalid_argument("retry policy: max_retries must be >= 0");
  }
  if (policy.base_backoff < 0 || policy.max_backoff < 0) {
    throw std::invalid_argument("retry policy: backoff ticks must be >= 0");
  }
  if (policy.multiplier < 1.0) {
    throw std::invalid_argument("retry policy: multiplier must be >= 1");
  }
  if (policy.jitter < 0.0 || policy.jitter > 1.0) {
    throw std::invalid_argument("retry policy: jitter must be in [0, 1]");
  }
}

Tick backoff_wait(const RetryPolicy& policy, int failed_attempts, Rng& rng) {
  RTSP_REQUIRE(failed_attempts >= 1);
  double w = static_cast<double>(policy.base_backoff);
  for (int n = 1; n < failed_attempts; ++n) {
    w *= policy.multiplier;
    if (w >= static_cast<double>(policy.max_backoff)) break;
  }
  w = std::min(w, static_cast<double>(policy.max_backoff));
  if (policy.jitter > 0.0) {
    w -= std::floor(policy.jitter * w * rng.uniform01());
  }
  return static_cast<Tick>(w);
}

}  // namespace rtsp::exec
