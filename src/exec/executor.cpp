#include "exec/executor.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/cost_model.hpp"
#include "core/feasibility.hpp"
#include "core/residual.hpp"
#include "heuristics/registry.hpp"
#include "obs/introspect.hpp"
#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace rtsp::exec {

const char* to_string(AttemptOutcome o) {
  switch (o) {
    case AttemptOutcome::Success: return "success";
    case AttemptOutcome::TransientFailure: return "transient failure";
  }
  return "unknown";
}

const char* to_string(ReplanReason r) {
  switch (r) {
    case ReplanReason::RetriesExhausted: return "retries exhausted";
    case ReplanReason::InvalidAction: return "invalid action";
    case ReplanReason::EndStateMismatch: return "end-state mismatch";
  }
  return "unknown";
}

double ExecutionReport::cost_inflation() const {
  if (planned_cost == 0) {
    return actual_cost == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(actual_cost) / static_cast<double>(planned_cost);
}

namespace {

void check_plan_ids(const SystemModel& model, const Schedule& plan) {
  for (const Action& a : plan) {
    const bool ok = a.server < model.num_servers() &&
                    a.object < model.num_objects() &&
                    (!a.is_transfer() || is_dummy(a.source) ||
                     a.source < model.num_servers());
    if (!ok) {
      throw std::invalid_argument("plan action out of range for model: " +
                                  a.to_string());
    }
  }
}

/// One execution run; the class keeps the mutable machinery (clock, live
/// state, pending tail, report under construction) in one place.
class Run {
 public:
  Run(const SystemModel& model, const ReplicationMatrix& x_old,
      const ReplicationMatrix& x_new, const Schedule& plan,
      const FaultSpec& faults, const ExecutorOptions& options)
      : model_(model),
        x_new_(x_new),
        options_(options),
        oracle_(faults),
        state_(model, x_old),
        base_seed_(mix64(faults.seed, options.seed)),
        rng_(base_seed_),
        replan_pipeline_(make_pipeline(options.replan_algo)) {
    pending_ = plan.actions();
    report_.planned_cost = schedule_cost(model, plan);
    report_.planned_dummy_transfers = plan.dummy_transfer_count();
    if (options_.record_provenance) {
      current_stage_ = intern_stage(prov::StageKind::Builder, "PLAN");
    }
  }

  ExecutionReport run() {
    OBS_SPAN("execute");
    OBS_PROGRESS(set_stage("exec.run"));
    while (!done_) {
      apply_due_losses();
      const bool exhausted =
          options_.budget_ticks > 0 && clock_ >= options_.budget_ticks;
      if (cursor_ >= pending_.size()) {
        if (state_.placement() == x_new_) break;
        if (exhausted) {
          report_.budget_exhausted = true;
          break;
        }
        replan(ReplanReason::EndStateMismatch, Action{});
        continue;
      }
      if (exhausted) {
        report_.budget_exhausted = true;
        break;
      }
      execute_next();
    }
    finish();
    return std::move(report_);
  }

 private:
  std::uint32_t intern_stage(prov::StageKind kind, const std::string& name) {
    for (std::uint32_t i = 0; i < report_.provenance.stages.size(); ++i) {
      if (report_.provenance.stages[i].kind == kind &&
          report_.provenance.stages[i].name == name) {
        return i;
      }
    }
    report_.provenance.stages.push_back({kind, name});
    return static_cast<std::uint32_t>(report_.provenance.stages.size() - 1);
  }

  /// Journals one typed event at `tick` (no-op without a journal). `a` fills
  /// the id fields; a dummy source is recorded as -2 (the unsigned sentinel
  /// does not fit the compact signed wire field).
  void journal_event(obs::JournalEventType type, Tick tick, const Action* a,
                     std::int64_t value = 0, std::int64_t extra = 0,
                     std::string detail = {}) {
    if (options_.journal == nullptr) return;
    obs::JournalEvent e;
    e.type = type;
    e.tick = tick;
    e.wall_ns = obs::now_ns();
    if (a != nullptr) {
      e.server = static_cast<std::int64_t>(a->server);
      e.object = static_cast<std::int64_t>(a->object);
      if (a->is_transfer()) {
        e.source = is_dummy(a->source) ? -2 : static_cast<std::int64_t>(a->source);
      }
    }
    e.value = value;
    e.extra = extra;
    e.detail = std::move(detail);
    options_.journal->record(std::move(e));
  }

  /// Virtual-clock sample hook (no-op without a sampler) — also publishes
  /// the virtual clock for /progress and /metrics scrapers. Called at
  /// attempt/retry/replan/drain boundaries; observers only, never read back.
  void sample(const char* label) {
    if (options_.sampler != nullptr) options_.sampler->sample_tick(clock_, label);
    OBS_GAUGE_SET("exec.clock_ticks", clock_);
    OBS_PROGRESS(set_exec_tick(static_cast<std::int64_t>(clock_)));
  }

  /// Applies `a` (must be valid) and appends it to the effective sequence,
  /// attributing it to `stage` when provenance is on.
  void commit(const Action& a, std::uint32_t stage) {
    state_.apply(a);
    report_.effective.push_back(a);
    if (options_.record_provenance) {
      prov::Entry e;
      e.id = static_cast<std::uint64_t>(report_.effective.size() - 1);
      e.stage = stage;
      report_.provenance.entries.push_back(e);
    }
  }

  /// Destroys replicas whose loss time has been reached. Each applied loss
  /// becomes a forced deletion in the effective sequence so the validator
  /// can replay the run.
  void apply_due_losses() {
    while (const ReplicaLoss* l = oracle_.next_loss_due(clock_)) {
      if (state_.holds(l->server, l->object)) {
        const Action del = Action::remove(l->server, l->object);
        commit(del, stage_loss());
        ++report_.loss_deletions;
        OBS_COUNT("exec.loss_deletions");
        journal_event(obs::JournalEventType::ReplicaLoss, clock_, &del);
      }
      oracle_.pop_loss();
    }
  }

  /// Earliest time >= clock_ at which every endpoint of `a` is online.
  Tick stall_until(const Action& a) const {
    Tick t = clock_;
    while (true) {
      Tick t2 = oracle_.online_at(a.server, t);
      if (a.is_transfer()) t2 = oracle_.online_at(a.source, t2);
      if (t2 == t) return t;
      t = t2;
    }
  }

  /// Cost of attempting `a` right now, including degradation factors.
  Cost attempt_cost(const Action& a) const {
    if (!a.is_transfer()) return 0;
    const Cost nominal = model_.transfer_cost(a.server, a.object, a.source);
    const double factor = oracle_.link_factor(a.server, a.source, clock_);
    if (factor == 1.0) return nominal;
    return static_cast<Cost>(
        std::llround(static_cast<double>(nominal) * factor));
  }

  /// Stalls past offline windows, applies newly due losses, and classifies
  /// `a` against the live state. Returns the stall charged.
  Tick prepare_attempt(const Action& a, ActionError& err) {
    const Tick until = stall_until(a);
    const Tick stall = until - clock_;
    if (stall > 0) {
      journal_event(obs::JournalEventType::OfflineOpen, clock_, &a, stall);
    }
    clock_ = until;
    report_.total_stall += stall;
    if (stall > 0) {
      journal_event(obs::JournalEventType::OfflineClose, clock_, &a, stall);
    }
    apply_due_losses();
    err = state_.classify(a);
    return stall;
  }

  void record_attempt(const Action& a, int attempt, Tick at,
                      AttemptOutcome outcome, Cost cost, Tick stall) {
    report_.attempts.push_back({a, attempt, at, outcome, cost, stall, 0});
    report_.actual_cost += cost;
    OBS_COUNT("exec.attempts");
    journal_event(obs::JournalEventType::AttemptStart, at, &a, cost, attempt);
    journal_event(outcome == AttemptOutcome::Success
                      ? obs::JournalEventType::AttemptSuccess
                      : obs::JournalEventType::TransientFault,
                  at, &a, cost, attempt);
    sample("attempt");
  }

  /// Runs the front pending action through the retry machinery.
  void execute_next() {
    const Action a = pending_[cursor_];
    const bool can_fail =
        a.is_transfer() && !is_dummy(a.source) &&
        oracle_.transient_failure_rate() > 0.0;
    int failures = 0;
    while (true) {
      ActionError err = ActionError::None;
      const Tick stall = prepare_attempt(a, err);
      if (err != ActionError::None) {
        replan(ReplanReason::InvalidAction, a);
        return;
      }
      const Cost cost = attempt_cost(a);
      const Tick at = clock_;
      if (can_fail && rng_.chance(oracle_.transient_failure_rate())) {
        ++failures;
        ++report_.transient_failures;
        OBS_COUNT("exec.transient_failures");
        record_attempt(a, failures, at, AttemptOutcome::TransientFailure, cost,
                       stall);
        clock_ += cost;  // the wasted transmission still took its time
        if (failures > options_.retry.max_retries) {
          permanent_failure(a);
          return;
        }
        const Tick wait = backoff_wait(options_.retry, failures, rng_);
        report_.attempts.back().backoff = wait;
        report_.total_backoff += wait;
        journal_event(obs::JournalEventType::Retry, clock_, &a, wait, failures);
        sample("retry");
        clock_ += wait;
        ++report_.retries;
        OBS_COUNT("exec.retries");
        continue;
      }
      record_attempt(a, failures + 1, at, AttemptOutcome::Success, cost, stall);
      commit(a, current_stage_);
      clock_ += cost;
      ++cursor_;
      return;
    }
  }

  /// An action exhausted its retries: degrade it to a dummy transfer once it
  /// has failed permanently often enough, otherwise replan the tail.
  void permanent_failure(const Action& a) {
    const std::size_t count = ++permanent_failures_[{a.server, a.object}];
    if (a.is_transfer() && count >= options_.degrade_after) {
      const Action dummy = Action::transfer(a.server, a.object, kDummyServer);
      ActionError err = ActionError::None;
      const Tick stall = prepare_attempt(dummy, err);
      if (err != ActionError::None) {
        replan(ReplanReason::InvalidAction, dummy);
        return;
      }
      const Cost cost = attempt_cost(dummy);
      journal_event(obs::JournalEventType::Degradation, clock_, &dummy, cost,
                    static_cast<std::int64_t>(count));
      record_attempt(dummy, 1, clock_, AttemptOutcome::Success, cost, stall);
      commit(dummy, stage_degraded());
      clock_ += cost;
      ++cursor_;
      ++report_.degraded_transfers;
      OBS_COUNT("exec.degraded_transfers");
      return;
    }
    replan(ReplanReason::RetriesExhausted, a);
  }

  void replan(ReplanReason reason, const Action& trigger) {
    if (report_.replans.size() >= options_.max_replans) {
      drain_degraded();
      return;
    }
    OBS_SPAN("execute.replan");
    OBS_COUNT("exec.replans");
    OBS_PROGRESS(set_stage("exec.replan"));
    OBS_LOG_WARN("executor replanning",
                 obs::log_field("reason", to_string(reason)),
                 obs::log_field("at", static_cast<std::int64_t>(clock_)),
                 obs::log_field("replans", report_.replans.size() + 1));
    const ResidualProblem residual =
        make_residual(model_, state_.placement(), x_new_);
    ReplanEvent event;
    event.at = clock_;
    event.reason = reason;
    event.trigger = trigger;
    event.dropped = pending_.size() - cursor_;
    event.residual_lower_bound = residual.lower_bound;
    pending_.clear();
    cursor_ = 0;
    if (!residual.complete()) {
      Timer timer;
      Rng replan_rng(mix64(base_seed_, report_.replans.size() + 1));
      const Schedule tail = replan_pipeline_.run(model_, residual.x_mid, x_new_,
                                                 replan_rng);
      event.seconds = timer.seconds();
      OBS_LATENCY_NS("exec.replan", static_cast<std::uint64_t>(
                                        event.seconds * 1e9));
      event.added = tail.size();
      pending_ = tail.actions();
      if (options_.record_provenance) {
        current_stage_ = intern_stage(
            prov::StageKind::Builder,
            "REPLAN" + std::to_string(report_.replans.size() + 1) + ":" +
                options_.replan_algo);
      }
    }
    journal_event(obs::JournalEventType::ReplanTrigger, event.at,
                  reason == ReplanReason::EndStateMismatch ? nullptr : &trigger,
                  static_cast<std::int64_t>(event.dropped),
                  static_cast<std::int64_t>(event.added), to_string(reason));
    sample("replan");
    report_.replans.push_back(std::move(event));
  }

  /// Last-resort fallback when the replan budget is spent: jump past the
  /// fault horizon (offline windows over, all losses materialized), then
  /// drain the residual worst-case plan — delete every superfluous replica,
  /// fetch every outstanding one from the (fault-immune) dummy server. Valid
  /// whenever X_new is storage-feasible, so the run still reaches X_new.
  void drain_degraded() {
    clock_ = std::max(clock_, oracle_.horizon());
    OBS_PROGRESS(set_stage("exec.drain"));
    OBS_LOG_WARN("executor draining (replan budget spent)",
                 obs::log_field("at", static_cast<std::int64_t>(clock_)),
                 obs::log_field("dropped", pending_.size() - cursor_));
    journal_event(obs::JournalEventType::Drain, clock_, nullptr,
                  static_cast<std::int64_t>(pending_.size() - cursor_));
    sample("drain");
    apply_due_losses();
    pending_.clear();
    cursor_ = 0;
    for (ServerId i = 0; i < model_.num_servers(); ++i) {
      for (ObjectId k : state_.placement().objects_on(i)) {
        if (!x_new_.test(i, k)) {
          record_attempt(Action::remove(i, k), 1, clock_,
                         AttemptOutcome::Success, 0, 0);
          commit(Action::remove(i, k), stage_degraded());
        }
      }
    }
    for (ServerId i = 0; i < model_.num_servers(); ++i) {
      for (ObjectId k : x_new_.objects_on(i)) {
        if (state_.holds(i, k)) continue;
        const Action dummy = Action::transfer(i, k, kDummyServer);
        RTSP_REQUIRE(state_.can_apply(dummy));
        const Cost cost = attempt_cost(dummy);
        record_attempt(dummy, 1, clock_, AttemptOutcome::Success, cost, 0);
        commit(dummy, stage_degraded());
        clock_ += cost;
        ++report_.degraded_transfers;
        OBS_COUNT("exec.degraded_transfers");
      }
    }
    done_ = true;
  }

  void finish() {
    report_.final_placement = state_.placement();
    report_.reached_goal = report_.final_placement == x_new_;
    report_.effective_cost = schedule_cost(model_, report_.effective);
    report_.effective_dummy_transfers = report_.effective.dummy_transfer_count();
    report_.finished_at = clock_;
    OBS_GAUGE_SET("exec.stall_ticks", report_.total_stall);
    OBS_GAUGE_SET("exec.backoff_ticks", report_.total_backoff);
    OBS_GAUGE_SET("exec.finished_at", report_.finished_at);
    OBS_PROGRESS(set_stage("exec.finished"));
    OBS_LOG_INFO("execution finished",
                 obs::log_field("reached_goal", report_.reached_goal),
                 obs::log_field("finished_at",
                                static_cast<std::int64_t>(report_.finished_at)),
                 obs::log_field("attempts", report_.attempts.size()),
                 obs::log_field("retries", report_.retries),
                 obs::log_field("replans", report_.replans.size()));
    sample("finish");
    if (options_.record_provenance) attach_root_causes();
  }

  /// Dummy transfers in the effective sequence get the same deadlock
  /// witnesses `rtsp explain` shows for planned schedules.
  void attach_root_causes() {
    const ReplicationMatrix& x_old = start_placement_;
    for (std::size_t u = 0; u < report_.effective.size(); ++u) {
      if (!report_.effective[u].is_dummy_transfer()) continue;
      report_.provenance.root_causes.push_back(
          prov::make_root_cause(model_, x_old, report_.effective, u));
      report_.provenance.entries[u].root_cause =
          report_.provenance.root_causes.size() - 1;
    }
  }

  std::uint32_t stage_degraded() {
    if (!options_.record_provenance) return 0;
    return intern_stage(prov::StageKind::Unknown, "DEGRADED");
  }
  std::uint32_t stage_loss() {
    if (!options_.record_provenance) return 0;
    return intern_stage(prov::StageKind::Unknown, "FAULT-LOSS");
  }

  const SystemModel& model_;
  const ReplicationMatrix& x_new_;
  const ExecutorOptions& options_;
  FaultOracle oracle_;
  ExecutionState state_;
  ReplicationMatrix start_placement_{state_.placement()};
  std::uint64_t base_seed_;
  Rng rng_;
  Pipeline replan_pipeline_;

  std::vector<Action> pending_;
  std::size_t cursor_ = 0;
  Tick clock_ = 0;
  bool done_ = false;
  std::map<std::pair<ServerId, ObjectId>, std::size_t> permanent_failures_;
  std::uint32_t current_stage_ = 0;
  ExecutionReport report_;
};

}  // namespace

ExecutionReport execute_schedule(const SystemModel& model,
                                 const ReplicationMatrix& x_old,
                                 const ReplicationMatrix& x_new,
                                 const Schedule& plan, const FaultSpec& faults,
                                 const ExecutorOptions& options) {
  validate_policy(options.retry);
  validate_spec(model, faults);
  check_plan_ids(model, plan);
  if (options.degrade_after == 0) {
    throw std::invalid_argument("executor: degrade_after must be >= 1");
  }
  if (!storage_feasible(model, x_new)) {
    throw std::invalid_argument(
        "executor: X_new is not storage-feasible; no terminating execution "
        "exists");
  }
  Run run(model, x_old, x_new, plan, faults, options);
  return run.run();
}

}  // namespace rtsp::exec
