// Bounded-retry policy with exponential backoff and deterministic jitter.
//
// One action gets 1 + max_retries attempts. After the n-th failed attempt
// (1-based) the executor waits
//     w = min(max_backoff, base_backoff * multiplier^(n-1))
// ticks, shrunk by up to `jitter * w` using a draw from the executor's Rng
// (subtractive "equal jitter": the wait lands in ((1-jitter)*w, w]). Jitter
// exists so replanned tails don't re-synchronize with periodic offline
// windows; determinism is preserved because the draw comes from the seeded
// execution stream.
#pragma once

#include "exec/fault_model.hpp"
#include "support/rng.hpp"

namespace rtsp::exec {

struct RetryPolicy {
  int max_retries = 3;       ///< failed attempts before the action fails for good
  Tick base_backoff = 16;    ///< wait after the first failure, in ticks
  double multiplier = 2.0;   ///< geometric growth per further failure
  Tick max_backoff = 1024;   ///< backoff ceiling
  double jitter = 0.5;       ///< fraction of the wait that randomizes, in [0, 1]

  bool operator==(const RetryPolicy&) const = default;
};

/// Throws std::invalid_argument on out-of-range fields.
void validate_policy(const RetryPolicy& policy);

/// Wait after the `failed_attempts`-th consecutive failure (1-based).
/// Consumes exactly one draw from `rng` when jitter > 0.
Tick backoff_wait(const RetryPolicy& policy, int failed_attempts, Rng& rng);

}  // namespace rtsp::exec
