#include "placement/zipf.hpp"

#include <cmath>
#include <numeric>

#include "support/assert.hpp"

namespace rtsp {

std::vector<double> zipf_weights(std::size_t count, double theta) {
  RTSP_REQUIRE(theta >= 0.0);
  std::vector<double> w(count);
  double sum = 0.0;
  for (std::size_t r = 0; r < count; ++r) {
    w[r] = 1.0 / std::pow(static_cast<double>(r + 1), theta);
    sum += w[r];
  }
  for (double& x : w) x /= sum;
  return w;
}

std::vector<double> random_zipf_rates(std::size_t count, double theta,
                                      double total_rate, Rng& rng) {
  RTSP_REQUIRE(total_rate > 0.0);
  std::vector<double> weights = zipf_weights(count, theta);
  std::vector<std::size_t> ranking(count);
  std::iota(ranking.begin(), ranking.end(), std::size_t{0});
  rng.shuffle(ranking);
  std::vector<double> rates(count);
  for (std::size_t r = 0; r < count; ++r) {
    rates[ranking[r]] = weights[r] * total_rate;
  }
  return rates;
}

}  // namespace rtsp
