// Zipf-like popularity distributions, the standard model for video/Web
// object request rates (the paper's motivating workload).
#pragma once

#include <cstddef>
#include <vector>

#include "support/rng.hpp"

namespace rtsp {

/// Normalized popularity weights p_rank ~ 1/(rank+1)^theta for `count`
/// objects, most popular first. theta = 0 is uniform.
std::vector<double> zipf_weights(std::size_t count, double theta);

/// Per-object request rates: zipf weights assigned to objects under a random
/// popularity ranking, scaled so they sum to `total_rate`.
std::vector<double> random_zipf_rates(std::size_t count, double theta,
                                      double total_rate, Rng& rng);

}  // namespace rtsp
