// Client access cost of a replication scheme — the CDN/distributed-server
// metric ([9], [13], [22] of the paper) that replica placement minimizes and
// whose periodic re-optimization creates RTSP instances.
#pragma once

#include <vector>

#include "core/replication.hpp"
#include "core/system.hpp"

namespace rtsp {

/// Request rates: demand[i][k] = reads of object k issued at server i per
/// unit time (a dense M x N matrix).
struct DemandMatrix {
  DemandMatrix(std::size_t servers, std::size_t objects)
      : servers_(servers), objects_(objects), rates_(servers * objects, 0.0) {}

  double at(ServerId i, ObjectId k) const { return rates_[i * objects_ + k]; }
  void set(ServerId i, ObjectId k, double rate) { rates_[i * objects_ + k] = rate; }
  std::size_t servers() const { return servers_; }
  std::size_t objects() const { return objects_; }

 private:
  std::size_t servers_;
  std::size_t objects_;
  std::vector<double> rates_;
};

/// Builds demand where every server requests object k at rates[k] / M
/// (uniform client spread over servers).
DemandMatrix uniform_demand(std::size_t servers, const std::vector<double>& rates);

/// Total access cost: sum over (i, k) of demand * s(O_k) * distance to the
/// nearest replicator (0 when i replicates k itself; the dummy link cost
/// when k has no replicator at all).
double access_cost(const SystemModel& model, const ReplicationMatrix& x,
                   const DemandMatrix& demand);

}  // namespace rtsp
