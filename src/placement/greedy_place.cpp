#include "placement/greedy_place.hpp"

#include <algorithm>
#include <limits>

namespace rtsp {

namespace {

/// Access-cost reduction from adding replica (i, k) to x.
double replica_benefit(const SystemModel& model, const ReplicationMatrix& x,
                       const DemandMatrix& demand, ServerId i, ObjectId k) {
  // Only object k's terms change; evaluate them directly.
  double before = 0.0;
  double after = 0.0;
  for (ServerId j = 0; j < model.num_servers(); ++j) {
    const double rate = demand.at(j, k);
    if (rate == 0.0) continue;
    LinkCost link_before = 0;
    if (!x.test(j, k)) link_before = model.nearest_source_cost(j, k, x);
    LinkCost link_after = link_before;
    if (j == i) {
      link_after = 0;
    } else if (!x.test(j, k)) {
      link_after = std::min(link_before, model.costs().at(j, i));
    }
    const double size = static_cast<double>(model.object_size(k));
    before += rate * size * static_cast<double>(link_before);
    after += rate * size * static_cast<double>(link_after);
  }
  return before - after;
}

}  // namespace

ReplicationMatrix greedy_placement(const SystemModel& model, const DemandMatrix& demand,
                                   const GreedyPlacementOptions& options, Rng& rng) {
  RTSP_REQUIRE(demand.servers() == model.num_servers());
  RTSP_REQUIRE(demand.objects() == model.num_objects());
  const std::size_t m = model.num_servers();
  const std::size_t n = model.num_objects();

  ReplicationMatrix x(m, n);
  std::vector<Size> used(m, 0);
  std::vector<Size> budget(m);
  for (ServerId i = 0; i < m; ++i) {
    budget[i] = static_cast<Size>(
        static_cast<double>(model.capacity(i)) * (1.0 - options.reserve_fraction));
  }
  auto fits = [&](ServerId i, ObjectId k) {
    return used[i] + model.object_size(k) <= budget[i];
  };
  std::size_t total = 0;

  // Phase 1: one mandatory replica per object, at the server with the
  // highest demand-weighted pull that can host it (random tie-breaks).
  std::vector<ObjectId> order(n);
  for (ObjectId k = 0; k < n; ++k) order[k] = k;
  rng.shuffle(order);
  for (ObjectId k : order) {
    ServerId best = kDummyServer;
    double best_score = -1.0;
    for (ServerId i = 0; i < m; ++i) {
      if (!fits(i, k)) continue;
      double score = 0.0;
      for (ServerId j = 0; j < m; ++j) {
        score += demand.at(j, k) /
                 (1.0 + static_cast<double>(model.costs().at(j, i)));
      }
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    RTSP_REQUIRE_MSG(!is_dummy(best), "no server can host object " << k);
    x.set(best, k);
    used[best] += model.object_size(k);
    ++total;
  }

  // Phase 2: add replicas greedily by absolute benefit per storage unit.
  while (options.max_total_replicas == 0 || total < options.max_total_replicas) {
    ServerId best_i = kDummyServer;
    ObjectId best_k = 0;
    double best_density = 0.0;
    for (ServerId i = 0; i < m; ++i) {
      for (ObjectId k = 0; k < n; ++k) {
        if (x.test(i, k) || !fits(i, k)) continue;
        const double benefit = replica_benefit(model, x, demand, i, k);
        const double density = benefit / static_cast<double>(model.object_size(k));
        if (density > best_density) {
          best_density = density;
          best_i = i;
          best_k = k;
        }
      }
    }
    if (is_dummy(best_i) || best_density <= 0.0) break;
    x.set(best_i, best_k);
    used[best_i] += model.object_size(best_k);
    ++total;
  }
  return x;
}

}  // namespace rtsp
