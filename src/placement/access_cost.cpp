#include "placement/access_cost.hpp"

namespace rtsp {

DemandMatrix uniform_demand(std::size_t servers, const std::vector<double>& rates) {
  DemandMatrix d(servers, rates.size());
  for (ServerId i = 0; i < servers; ++i) {
    for (ObjectId k = 0; k < rates.size(); ++k) {
      d.set(i, k, rates[k] / static_cast<double>(servers));
    }
  }
  return d;
}

double access_cost(const SystemModel& model, const ReplicationMatrix& x,
                   const DemandMatrix& demand) {
  RTSP_REQUIRE(demand.servers() == model.num_servers());
  RTSP_REQUIRE(demand.objects() == model.num_objects());
  double total = 0.0;
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    for (ObjectId k = 0; k < model.num_objects(); ++k) {
      const double rate = demand.at(i, k);
      if (rate == 0.0) continue;
      LinkCost link = 0;
      if (!x.test(i, k)) {
        link = model.nearest_source_cost(i, k, x);  // dummy cost if no replica
      }
      total += rate * static_cast<double>(model.object_size(k)) *
               static_cast<double>(link);
    }
  }
  return total;
}

}  // namespace rtsp
