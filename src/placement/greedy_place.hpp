// Greedy replica placement: produces the X_new that RTSP then implements.
//
// Classic greedy-by-benefit placement (Qiu et al. [17] family): starting
// from one mandatory replica per object, repeatedly add the (server, object)
// replica with the largest access-cost reduction per storage unit until no
// replica fits or improves. This is deliberately a simple representative of
// the placement literature — the paper treats placement as a black box whose
// successive outputs feed RTSP.
#pragma once

#include "placement/access_cost.hpp"
#include "support/rng.hpp"

namespace rtsp {

struct GreedyPlacementOptions {
  /// Stop after this many replicas in total (0 = fill until no candidate).
  std::size_t max_total_replicas = 0;
  /// Keep a replica slot free on every server (fraction of capacity) so
  /// the produced placements leave RTSP some room; 0 reproduces tight fits.
  double reserve_fraction = 0.0;
};

/// Builds a placement for `demand` under the storage constraints of `model`.
/// Every object gets at least one replica (at its cheapest demand-weighted
/// server that fits); additional replicas are added greedily by benefit.
ReplicationMatrix greedy_placement(const SystemModel& model, const DemandMatrix& demand,
                                   const GreedyPlacementOptions& options, Rng& rng);

}  // namespace rtsp
