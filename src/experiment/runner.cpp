#include "experiment/runner.hpp"

#include <optional>
#include <stdexcept>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace rtsp {

SweepResult run_sweep(const std::vector<SweepPoint>& points, const SweepConfig& config) {
  RTSP_REQUIRE(!points.empty());
  RTSP_REQUIRE(!config.algorithms.empty());
  RTSP_REQUIRE(config.trials >= 1);

  // Parse pipelines once (also validates the specs before any work runs).
  std::vector<Pipeline> pipelines;
  pipelines.reserve(config.algorithms.size());
  for (const auto& spec : config.algorithms) pipelines.push_back(make_pipeline(spec));

  const std::size_t num_points = points.size();
  const std::size_t num_algos = pipelines.size();
  const std::size_t num_tasks = num_points * config.trials;

  // raw[task][algo]: each parallel task owns one slot, so no locking.
  std::vector<std::vector<TrialMetrics>> raw(num_tasks,
                                             std::vector<TrialMetrics>(num_algos));

  parallel_for(config.threads, num_tasks, [&](std::size_t task) {
    const std::size_t point_idx = task / config.trials;
    const std::size_t trial = task % config.trials;
    OBS_SPAN("trial", "point=" + points[point_idx].label +
                          " trial=" + std::to_string(trial));
    // Stream ids: instance stream and per-algorithm streams are all
    // derived from (base_seed, point, trial, lane) and independent.
    const std::uint64_t task_seed =
        mix64(config.base_seed, mix64(point_idx, trial));
    Rng instance_rng(mix64(task_seed, 0));
    const Instance instance = points[point_idx].factory(instance_rng);

    for (std::size_t a = 0; a < num_algos; ++a) {
      Rng algo_rng(mix64(task_seed, 1 + a));
      OBS_SPAN("algo." + pipelines[a].name(),
               "point=" + points[point_idx].label +
                   " trial=" + std::to_string(trial));
      Timer timer;
      PipelineTiming timing;
      // Attribution costs a schedule copy per adopted rewrite, so the
      // recorder is armed only in obs runs; figure sweeps stay untouched.
      std::optional<prov::Scope> prov_scope;
      if (prov::kRecorderCompiled && obs::enabled()) {
        prov_scope.emplace(instance.model, instance.x_old);
      }
      const Schedule h = pipelines[a].run(instance.model, instance.x_old,
                                          instance.x_new, algo_rng, &timing);
      TrialMetrics& m = raw[task][a];
      m.seconds = timer.seconds();
      m.builder_seconds = timing.builder_seconds;
      m.improver_seconds = timing.improver_seconds;
      m.dummy_transfers = h.dummy_transfer_count();
      m.implementation_cost = schedule_cost(instance.model, h);
      m.schedule_length = h.size();
      m.transfers = h.transfer_count();
      if (prov_scope) {
        const prov::Provenance p = prov_scope->finalize(h);
        const auto att = prov::attribute_schedule(instance.model, h, p);
        for (const auto& sa : att.stages) {
          const bool builder = p.stages[sa.stage].kind == prov::StageKind::Builder;
          (builder ? m.builder_cost : m.improver_cost) += sa.cost;
          (builder ? m.builder_dummies : m.improver_dummies) += sa.dummy_transfers;
        }
      }
      if (config.validate) {
        const auto v =
            Validator::validate(instance.model, instance.x_old, instance.x_new, h);
        if (!v.valid) {
          throw std::logic_error("algorithm " + pipelines[a].name() +
                                 " produced an invalid schedule at point '" +
                                 points[point_idx].label + "' trial " +
                                 std::to_string(trial) + ": " + v.to_string());
        }
      }
    }
  });

  SweepResult result;
  for (const auto& p : points) result.point_labels.push_back(p.label);
  for (const auto& p : pipelines) result.algorithms.push_back(p.name());
  result.cells.assign(num_points, std::vector<CellMetrics>(num_algos));
  for (std::size_t task = 0; task < num_tasks; ++task) {
    const std::size_t point_idx = task / config.trials;
    for (std::size_t a = 0; a < num_algos; ++a) {
      result.cells[point_idx][a].add(raw[task][a]);
    }
  }
  return result;
}

}  // namespace rtsp
