#include "experiment/anytime_sweep.hpp"

#include <stdexcept>
#include <string>

#include "core/feasibility.hpp"
#include "core/validator.hpp"
#include "support/csv.hpp"

namespace rtsp {

namespace {

double gap_of(Cost cost, Cost lb) {
  if (cost <= lb) return 0.0;
  const double denom = lb > 0 ? static_cast<double>(lb) : 1.0;
  return static_cast<double>(cost - lb) / denom;
}

Instance make_setup_instance(const AnytimeSweepConfig& config,
                             std::size_t setup_idx, Rng& rng) {
  switch (setup_idx) {
    case 0:
      return make_equal_size_instance(config.setup, config.replicas, rng);
    case 1:
      return make_uniform_size_instance(config.setup, config.replicas, rng);
    default:
      return make_extra_capacity_instance(config.setup, config.replicas,
                                          config.extra_capacity, rng);
  }
}

}  // namespace

std::vector<AnytimeCell> run_anytime_sweep(const AnytimeSweepConfig& config) {
  const std::vector<std::string> algos = config.algorithms.empty()
                                             ? default_portfolio_algorithms()
                                             : config.algorithms;
  const char* setup_names[] = {"equal_size", "uniform_size", "extra_capacity"};

  std::vector<AnytimeCell> cells;
  for (std::size_t s = 0; s < 3; ++s) {
    // One cell block per budget: the portfolio row first, then the singles.
    const std::size_t block_start = cells.size();
    for (const std::uint64_t budget : config.budgets) {
      cells.push_back(AnytimeCell{setup_names[s], budget, "PORTFOLIO", {}, {}});
      for (const std::string& algo : algos) {
        cells.push_back(AnytimeCell{setup_names[s], budget, algo, {}, {}});
      }
    }

    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      // The same instance serves every budget and algorithm (paired design).
      Rng inst_rng(mix64(mix64(config.base_seed, s), trial));
      const Instance inst = make_setup_instance(config, s, inst_rng);
      const Cost lb = cost_lower_bound(inst.model, inst.x_old, inst.x_new);
      const std::uint64_t solve_seed = mix64(config.base_seed, trial);

      std::size_t cell = block_start;
      for (const std::uint64_t budget : config.budgets) {
        PortfolioOptions opts;
        opts.algorithms = algos;
        opts.budget.ticks = budget;
        opts.threads = config.threads;
        opts.lns = config.lns;
        const PortfolioResult portfolio = solve_portfolio(
            inst.model, inst.x_old, inst.x_new, solve_seed, opts);
        if (!Validator::is_valid(inst.model, inst.x_old, inst.x_new,
                                 portfolio.schedule)) {
          throw std::logic_error("anytime sweep: portfolio schedule invalid");
        }
        cells[cell].cost.add(static_cast<double>(portfolio.cost));
        cells[cell].gap.add(gap_of(portfolio.cost, lb));
        ++cell;

        for (const std::string& algo : algos) {
          Budget b;
          b.ticks = budget;
          const BudgetedRun single = run_pipeline_budgeted(
              inst.model, inst.x_old, inst.x_new, algo, solve_seed, b);
          if (!Validator::is_valid(inst.model, inst.x_old, inst.x_new,
                                   single.schedule)) {
            throw std::logic_error("anytime sweep: single-pipeline schedule "
                                   "invalid for " + algo);
          }
          // The portfolio's incumbent folds in this exact run's stage
          // offers, so it can never be worse. Enforce the invariant.
          if (portfolio.cost > single.cost) {
            throw std::logic_error(
                "anytime sweep: portfolio (" + std::to_string(portfolio.cost) +
                ") worse than " + algo + " (" + std::to_string(single.cost) +
                ") at budget " + std::to_string(budget));
          }
          cells[cell].cost.add(static_cast<double>(single.cost));
          cells[cell].gap.add(gap_of(single.cost, lb));
          ++cell;
        }
      }
    }
  }
  return cells;
}

void write_anytime_sweep_csv(std::ostream& out,
                             const std::vector<AnytimeCell>& cells) {
  CsvWriter csv(out);
  csv.row({"setup", "budget_ticks", "algo", "trials", "cost_mean",
           "cost_stderr", "gap_mean"});
  for (const AnytimeCell& c : cells) {
    csv.field(c.setup);
    csv.field(c.budget);
    csv.field(c.algo);
    csv.field(static_cast<std::uint64_t>(c.cost.count()));
    csv.field(c.cost.mean());
    csv.field(c.cost.stderr_mean());
    csv.field(c.gap.mean());
    csv.end_row();
  }
}

}  // namespace rtsp
