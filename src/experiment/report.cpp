#include "experiment/report.hpp"

#include <fstream>
#include <stdexcept>

#include "support/csv.hpp"
#include "support/table.hpp"

namespace rtsp {

void print_series(std::ostream& out, const SweepResult& result, Metric metric,
                  const std::string& x_label) {
  TextTable table;
  std::vector<std::string> header = {x_label};
  for (const auto& algo : result.algorithms) header.push_back(algo);
  table.header(std::move(header));
  for (std::size_t p = 0; p < result.point_labels.size(); ++p) {
    std::vector<std::string> row = {result.point_labels[p]};
    for (std::size_t a = 0; a < result.algorithms.size(); ++a) {
      const SampleSet& s = metric_samples(result.cells[p][a], metric);
      row.push_back(format_mean_err(s.mean(), s.stderr_mean()));
    }
    table.add_row(std::move(row));
  }
  out << metric_name(metric) << " (mean ± stderr over "
      << (result.cells.empty() || result.cells[0].empty()
              ? 0
              : result.cells[0][0].dummy_transfers.count())
      << " trials)\n";
  table.print(out);
}

namespace {

void write_series_rows(CsvWriter& csv, const SweepResult& result, Metric metric,
                       const std::string& x_label) {
  (void)x_label;
  for (std::size_t p = 0; p < result.point_labels.size(); ++p) {
    for (std::size_t a = 0; a < result.algorithms.size(); ++a) {
      const SampleSet& s = metric_samples(result.cells[p][a], metric);
      csv.field(metric_name(metric))
          .field(result.point_labels[p])
          .field(result.algorithms[a])
          .field(s.count())
          .field(s.mean())
          .field(s.stddev())
          .field(s.stderr_mean())
          .field(s.min())
          .field(s.max());
      csv.end_row();
    }
  }
}

}  // namespace

void write_series_csv(std::ostream& out, const SweepResult& result, Metric metric,
                      const std::string& x_label) {
  CsvWriter csv(out);
  csv.row({"metric", x_label, "algorithm", "n", "mean", "stddev", "stderr", "min",
           "max"});
  write_series_rows(csv, result, metric, x_label);
}

void write_all_series_csv(std::ostream& out, const SweepResult& result,
                          const std::string& x_label) {
  CsvWriter csv(out);
  csv.row({"metric", x_label, "algorithm", "n", "mean", "stddev", "stderr", "min",
           "max"});
  for (Metric m : kAllMetrics) {
    write_series_rows(csv, result, m, x_label);
  }
}

void maybe_dump_csv(const std::string& path, const SweepResult& result,
                    const std::string& x_label) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open CSV output file: " + path);
  write_all_series_csv(out, result, x_label);
}

}  // namespace rtsp
