// Quality-vs-budget sweep for the anytime optimizer portfolio: on the three
// Sec-5.1 setups (equal sizes, uniform sizes, extra capacity), solve each
// trial instance at a ladder of deterministic tick budgets — once with the
// portfolio and once with every single constituent pipeline alone — and
// record the cost and lower-bound gap per (setup, budget, algorithm).
//
// Because the portfolio's incumbent folds in every stage result of every
// candidate (and each candidate replays exactly its standalone run — rng
// streams are keyed by spec), the portfolio curve dominates every single
// pipeline at every budget by construction; the sweep verifies that
// invariant on every cell and throws on violation. Deterministic in the
// base seed: tick budgets only, no wall-clock anywhere.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "portfolio/portfolio.hpp"
#include "support/stats.hpp"
#include "workload/paper_setup.hpp"

namespace rtsp {

struct AnytimeSweepConfig {
  std::vector<std::uint64_t> budgets = {2'000, 8'000, 32'000, 128'000, 512'000};
  /// Single pipelines to race / compare; empty selects
  /// default_portfolio_algorithms().
  std::vector<std::string> algorithms;
  std::size_t trials = 3;
  std::uint64_t base_seed = 0xa4e7133ULL;
  std::size_t threads = 0;  ///< portfolio race pool; 0 = hardware
  PaperSetup setup;
  std::size_t replicas = 2;
  /// Servers granted one extra slot in the extra-capacity setup.
  std::size_t extra_capacity = 10;
  LnsOptions lns;
};

/// Aggregates for one (setup, budget, algorithm) cell; algo "PORTFOLIO" is
/// the raced result, every other row a single pipeline at the same budget.
struct AnytimeCell {
  std::string setup;
  std::uint64_t budget = 0;
  std::string algo;
  SampleSet cost;
  SampleSet gap;
};

std::vector<AnytimeCell> run_anytime_sweep(const AnytimeSweepConfig& config);

/// Long format: setup,budget,algo,trials,cost_mean,cost_stderr,gap_mean.
void write_anytime_sweep_csv(std::ostream& out,
                             const std::vector<AnytimeCell>& cells);

}  // namespace rtsp
