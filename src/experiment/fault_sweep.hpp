// Fault-rate sweep for the execution engine: how much does implementation
// cost inflate — and how much dummy traffic appears — as the transient
// transfer-failure rate grows? Companion to the Fig-5/6 sweeps, but over the
// *execution* of schedules instead of their construction.
//
// Per (rate, trial): one random instance is generated, solved once with the
// planning pipeline, then executed under a FaultSpec with that transient
// rate plus `loss_count` randomly drawn replica losses. Deterministic in the
// base seed.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "support/stats.hpp"
#include "workload/scenario.hpp"

namespace rtsp {

struct FaultSweepConfig {
  std::vector<double> rates = {0.0, 0.05, 0.1, 0.2, 0.4};
  std::size_t trials = 5;
  std::uint64_t base_seed = 0xfa17ULL;
  std::string plan_algo = "GOLCF+H1+H2+OP1";
  exec::ExecutorOptions executor;
  RandomInstanceSpec instance;
  /// Replica losses injected per trial, at times drawn uniformly from the
  /// first half of the plan's serial duration.
  std::size_t loss_count = 0;
};

/// Aggregates for one sweep point (one transient rate).
struct FaultSweepCell {
  double rate = 0.0;
  SampleSet cost_inflation;      ///< actual paid / planned
  SampleSet dummy_inflation;     ///< effective dummies - planned dummies
  SampleSet retries;
  SampleSet replans;
  SampleSet degraded_transfers;
  SampleSet loss_deletions;
  SampleSet attempts;
};

/// Runs the sweep; every execution is checked to reach X_new with a
/// validator-clean effective sequence (throws on violation).
std::vector<FaultSweepCell> run_fault_sweep(const FaultSweepConfig& config);

/// Long-format CSV: rate,trials,<metric>_mean,<metric>_stderr per column.
void write_fault_sweep_csv(std::ostream& out,
                           const std::vector<FaultSweepCell>& cells);

}  // namespace rtsp
