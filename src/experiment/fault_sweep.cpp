#include "experiment/fault_sweep.hpp"

#include <stdexcept>

#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "obs/obs.hpp"
#include "support/csv.hpp"

namespace rtsp {

namespace {

/// Losses drawn over the plan's first half: replicas that exist in X_old are
/// the interesting targets (they can serve as sources).
exec::FaultSpec make_trial_spec(const Instance& inst, const Schedule& plan,
                                double rate, std::size_t loss_count, Rng& rng) {
  exec::FaultSpec spec;
  spec.seed = rng();
  spec.transient_failure_rate = rate;
  if (loss_count > 0) {
    const exec::Tick span =
        std::max<exec::Tick>(1, schedule_cost(inst.model, plan) / 2);
    std::vector<std::pair<ServerId, ObjectId>> replicas;
    for (ServerId i = 0; i < inst.model.num_servers(); ++i) {
      for (ObjectId k : inst.x_old.objects_on(i)) replicas.push_back({i, k});
    }
    for (std::size_t n = 0; n < loss_count && !replicas.empty(); ++n) {
      const auto [server, object] = rng.pick(replicas);
      spec.losses.push_back(
          {server, object, static_cast<exec::Tick>(rng.below(
                               static_cast<std::uint64_t>(span)))});
    }
  }
  return spec;
}

}  // namespace

std::vector<FaultSweepCell> run_fault_sweep(const FaultSweepConfig& config) {
  const Pipeline pipeline = make_pipeline(config.plan_algo);
  std::vector<FaultSweepCell> cells;
  cells.reserve(config.rates.size());
  for (std::size_t p = 0; p < config.rates.size(); ++p) {
    OBS_SPAN("fault_sweep.point");
    FaultSweepCell cell;
    cell.rate = config.rates[p];
    for (std::size_t t = 0; t < config.trials; ++t) {
      Rng rng = Rng::for_trial(config.base_seed, p * config.trials + t);
      const Instance inst = random_instance(config.instance, rng);
      Rng solve_rng = Rng::for_trial(config.base_seed, t);
      const Schedule plan =
          pipeline.run(inst.model, inst.x_old, inst.x_new, solve_rng);
      const exec::FaultSpec spec =
          make_trial_spec(inst, plan, cell.rate, config.loss_count, rng);
      exec::ExecutorOptions opt = config.executor;
      opt.seed = mix64(config.base_seed, p * config.trials + t);
      const exec::ExecutionReport report = exec::execute_schedule(
          inst.model, inst.x_old, inst.x_new, plan, spec, opt);
      if (!report.reached_goal ||
          !Validator::is_valid(inst.model, inst.x_old, inst.x_new,
                               report.effective)) {
        throw std::logic_error(
            "fault sweep: execution did not reach a validator-clean X_new");
      }
      cell.cost_inflation.add(report.cost_inflation());
      cell.dummy_inflation.add(
          static_cast<double>(report.effective_dummy_transfers) -
          static_cast<double>(report.planned_dummy_transfers));
      cell.retries.add(static_cast<double>(report.retries));
      cell.replans.add(static_cast<double>(report.replans.size()));
      cell.degraded_transfers.add(static_cast<double>(report.degraded_transfers));
      cell.loss_deletions.add(static_cast<double>(report.loss_deletions));
      cell.attempts.add(static_cast<double>(report.attempts.size()));
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

void write_fault_sweep_csv(std::ostream& out,
                           const std::vector<FaultSweepCell>& cells) {
  CsvWriter csv(out);
  csv.row({"rate", "trials", "cost_inflation_mean", "cost_inflation_stderr",
           "dummy_inflation_mean", "dummy_inflation_stderr", "retries_mean",
           "replans_mean", "degraded_mean", "loss_deletions_mean",
           "attempts_mean"});
  for (const FaultSweepCell& c : cells) {
    csv.field(c.rate);
    csv.field(static_cast<std::uint64_t>(c.cost_inflation.count()));
    csv.field(c.cost_inflation.mean());
    csv.field(c.cost_inflation.stderr_mean());
    csv.field(c.dummy_inflation.mean());
    csv.field(c.dummy_inflation.stderr_mean());
    csv.field(c.retries.mean());
    csv.field(c.replans.mean());
    csv.field(c.degraded_transfers.mean());
    csv.field(c.loss_deletions.mean());
    csv.field(c.attempts.mean());
    csv.end_row();
  }
}

}  // namespace rtsp
