// Sweep runner: evaluates a set of algorithm pipelines over a parameter
// sweep, many seeds per point, all algorithms sharing each trial's instance
// (paired comparison, as the paper's plots imply). Trials run in parallel;
// results are deterministic in the base seed regardless of thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "experiment/metrics.hpp"
#include "support/rng.hpp"
#include "workload/scenario.hpp"

namespace rtsp {

/// Builds the instance for one trial of one sweep point.
using InstanceFactory = std::function<Instance(Rng&)>;

struct SweepPoint {
  std::string label;  ///< x-axis label, e.g. "2" for two replicas per object
  InstanceFactory factory;
};

struct SweepConfig {
  std::vector<std::string> algorithms;  ///< pipeline specs, e.g. "GOLCF+OP1"
  std::size_t trials = 5;
  std::uint64_t base_seed = 0x5eed5eedULL;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Validate every produced schedule against the instance (cheap; any
  /// violation throws — heuristic bugs never silently skew results).
  bool validate = true;
};

struct SweepResult {
  std::vector<std::string> point_labels;
  std::vector<std::string> algorithms;
  /// cells[point][algorithm]
  std::vector<std::vector<CellMetrics>> cells;
};

/// Runs the sweep. Per (point, trial): one instance is generated with the
/// trial's own RNG stream, then every algorithm runs on it with an
/// algorithm-specific stream.
SweepResult run_sweep(const std::vector<SweepPoint>& points, const SweepConfig& config);

}  // namespace rtsp
