#include "experiment/figures.hpp"

#include "support/assert.hpp"

namespace rtsp {

namespace {

template <typename MakeInstance>
std::vector<SweepPoint> replicas_sweep(const PaperSetup& setup,
                                       MakeInstance make_instance) {
  std::vector<SweepPoint> points;
  for (std::size_t r = 1; r <= 5; ++r) {
    points.push_back({std::to_string(r), [setup, r, make_instance](Rng& rng) {
                        return make_instance(setup, r, rng);
                      }});
  }
  return points;
}

std::vector<SweepPoint> extra_capacity_sweep(const PaperSetup& setup,
                                             std::size_t replicas) {
  std::vector<SweepPoint> points;
  const std::size_t step = std::max<std::size_t>(1, setup.servers / 10);
  for (std::size_t extra = 0; extra <= setup.servers; extra += step) {
    points.push_back(
        {std::to_string(extra), [setup, replicas, extra](Rng& rng) {
           return make_extra_capacity_instance(setup, replicas, extra, rng);
         }});
  }
  return points;
}

std::vector<SweepPoint> equal_size_points(const PaperSetup& setup) {
  return replicas_sweep(setup, [](const PaperSetup& s, std::size_t r, Rng& rng) {
    return make_equal_size_instance(s, r, rng);
  });
}

std::vector<SweepPoint> uniform_size_points(const PaperSetup& setup) {
  return replicas_sweep(setup, [](const PaperSetup& s, std::size_t r, Rng& rng) {
    return make_uniform_size_instance(s, r, rng);
  });
}

}  // namespace

FigureSpec paper_figure(int number, const PaperSetup& setup) {
  switch (number) {
    case 4:
      return {"Fig 4", "dummy transfers vs replicas/object (equal sizes)",
              "replicas/object", equal_size_points(setup),
              {"AR", "GOLCF", "AR+H1+H2", "GOLCF+H1+H2"}, Metric::DummyTransfers};
    case 5:
      return {"Fig 5", "implementation cost vs replicas/object (equal sizes)",
              "replicas/object", equal_size_points(setup),
              {"AR", "GOLCF", "GOLCF+OP1", "GOLCF+H1+H2+OP1"},
              Metric::ImplementationCost};
    case 6:
      return {"Fig 6",
              "dummy transfers vs replicas/object (uniform sizes 1000-5000)",
              "replicas/object", uniform_size_points(setup),
              {"GOLCF", "GOLCF+H1+H2"}, Metric::DummyTransfers};
    case 7:
      return {"Fig 7",
              "implementation cost vs replicas/object (uniform sizes 1000-5000)",
              "replicas/object", uniform_size_points(setup),
              {"GOLCF", "GOLCF+OP1", "GOLCF+H1+H2+OP1"},
              Metric::ImplementationCost};
    case 8:
      return {"Fig 8", "dummy transfers vs servers with extra capacity (r=2)",
              "servers with extra capacity", extra_capacity_sweep(setup, 2),
              {"GOLCF", "GOLCF+H1+H2"}, Metric::DummyTransfers};
    case 9:
      return {"Fig 9", "implementation cost vs servers with extra capacity (r=2)",
              "servers with extra capacity", extra_capacity_sweep(setup, 2),
              {"GOLCF+OP1", "GOLCF+H1+H2+OP1"}, Metric::ImplementationCost};
    default:
      RTSP_REQUIRE_MSG(false, "no such paper figure: " << number);
  }
  return {};
}

std::vector<FigureSpec> all_paper_figures(const PaperSetup& setup) {
  std::vector<FigureSpec> figs;
  for (int n = 4; n <= 9; ++n) figs.push_back(paper_figure(n, setup));
  return figs;
}

}  // namespace rtsp
