// Per-trial measurements and their aggregates.
#pragma once

#include <cstddef>
#include <string>

#include "core/types.hpp"
#include "support/stats.hpp"

namespace rtsp {

/// What one algorithm produced on one instance.
struct TrialMetrics {
  std::size_t dummy_transfers = 0;  ///< Figs. 4, 6, 8 metric
  Cost implementation_cost = 0;     ///< Figs. 5, 7, 9 metric
  std::size_t schedule_length = 0;
  std::size_t transfers = 0;
  double seconds = 0.0;           ///< algorithm wall time (build + improve)
  double builder_seconds = 0.0;   ///< construction stage only
  double improver_seconds = 0.0;  ///< improver chain (incl. evaluator setup)
  /// Provenance-based cost/dummy split between the construction stage and
  /// the improver chain. Zero unless the sweep ran with obs enabled (the
  /// runner only arms a provenance recorder when obs::enabled()).
  Cost builder_cost = 0;
  Cost improver_cost = 0;
  std::size_t builder_dummies = 0;
  std::size_t improver_dummies = 0;
};

/// Aggregates over trials of one (sweep point, algorithm) cell.
struct CellMetrics {
  SampleSet dummy_transfers;
  SampleSet implementation_cost;
  SampleSet schedule_length;
  SampleSet seconds;
  SampleSet builder_seconds;
  SampleSet improver_seconds;
  SampleSet builder_cost;
  SampleSet improver_cost;
  SampleSet builder_dummies;
  SampleSet improver_dummies;

  void add(const TrialMetrics& t);
};

/// Which aggregate a report should tabulate.
enum class Metric {
  DummyTransfers,
  ImplementationCost,
  ScheduleLength,
  Seconds,
  BuilderSeconds,
  ImproverSeconds,
  BuilderCost,
  ImproverCost,
  BuilderDummies,
  ImproverDummies,
};

/// Every metric in report order, for dumps that emit all of them.
inline constexpr Metric kAllMetrics[] = {
    Metric::DummyTransfers, Metric::ImplementationCost, Metric::ScheduleLength,
    Metric::Seconds,        Metric::BuilderSeconds,     Metric::ImproverSeconds,
    Metric::BuilderCost,    Metric::ImproverCost,       Metric::BuilderDummies,
    Metric::ImproverDummies,
};

const char* metric_name(Metric m);
const SampleSet& metric_samples(const CellMetrics& cell, Metric m);

}  // namespace rtsp
