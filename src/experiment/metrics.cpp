#include "experiment/metrics.hpp"

namespace rtsp {

void CellMetrics::add(const TrialMetrics& t) {
  dummy_transfers.add(static_cast<double>(t.dummy_transfers));
  implementation_cost.add(static_cast<double>(t.implementation_cost));
  schedule_length.add(static_cast<double>(t.schedule_length));
  seconds.add(t.seconds);
  builder_seconds.add(t.builder_seconds);
  improver_seconds.add(t.improver_seconds);
  builder_cost.add(static_cast<double>(t.builder_cost));
  improver_cost.add(static_cast<double>(t.improver_cost));
  builder_dummies.add(static_cast<double>(t.builder_dummies));
  improver_dummies.add(static_cast<double>(t.improver_dummies));
}

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::DummyTransfers: return "dummy transfers";
    case Metric::ImplementationCost: return "implementation cost";
    case Metric::ScheduleLength: return "schedule length";
    case Metric::Seconds: return "algorithm seconds";
    case Metric::BuilderSeconds: return "builder seconds";
    case Metric::ImproverSeconds: return "improver seconds";
    case Metric::BuilderCost: return "builder cost share";
    case Metric::ImproverCost: return "improver cost share";
    case Metric::BuilderDummies: return "builder dummy share";
    case Metric::ImproverDummies: return "improver dummy share";
  }
  return "?";
}

const SampleSet& metric_samples(const CellMetrics& cell, Metric m) {
  switch (m) {
    case Metric::DummyTransfers: return cell.dummy_transfers;
    case Metric::ImplementationCost: return cell.implementation_cost;
    case Metric::ScheduleLength: return cell.schedule_length;
    case Metric::Seconds: return cell.seconds;
    case Metric::BuilderSeconds: return cell.builder_seconds;
    case Metric::ImproverSeconds: return cell.improver_seconds;
    case Metric::BuilderCost: return cell.builder_cost;
    case Metric::ImproverCost: return cell.improver_cost;
    case Metric::BuilderDummies: return cell.builder_dummies;
    case Metric::ImproverDummies: return cell.improver_dummies;
  }
  return cell.dummy_transfers;
}

}  // namespace rtsp
