// Paper-style figure reports: one row per sweep point, one column per
// algorithm, mean ± standard error — plus long-format CSV dumps.
#pragma once

#include <ostream>
#include <string>

#include "experiment/runner.hpp"

namespace rtsp {

/// Prints a figure series table, e.g.
///   replicas/object   AR        GOLCF     ...
///   1                 812 ± 12  533 ± 9   ...
void print_series(std::ostream& out, const SweepResult& result, Metric metric,
                  const std::string& x_label);

/// Writes long-format CSV: x,algorithm,n,mean,stddev,stderr,min,max.
void write_series_csv(std::ostream& out, const SweepResult& result, Metric metric,
                      const std::string& x_label);

/// Same long format, one header, a block per metric in kAllMetrics order.
void write_all_series_csv(std::ostream& out, const SweepResult& result,
                          const std::string& x_label);

/// Writes every metric to `path` if non-empty (one header + blocks).
void maybe_dump_csv(const std::string& path, const SweepResult& result,
                    const std::string& x_label);

}  // namespace rtsp
