// Canonical definitions of the paper's evaluation figures (Sec. 5): the
// sweep, the algorithm set and the headline metric of each. The bench
// binaries render these; the reproduction test suite runs scaled-down
// versions and asserts the paper's qualitative findings.
#pragma once

#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "workload/paper_setup.hpp"

namespace rtsp {

struct FigureSpec {
  std::string id;       ///< "Fig 4" ... "Fig 9"
  std::string title;
  std::string x_label;
  std::vector<SweepPoint> points;
  std::vector<std::string> algorithms;
  Metric headline = Metric::DummyTransfers;
};

/// Returns the figure definition for `number` in 4..9, built on `setup`
/// (which may be scaled down for tests). Sweeps:
///   Figs 4-7: replicas per object 1..5 (equal / uniform object sizes);
///   Figs 8-9: servers with one extra object slot, 0..servers in ten steps,
///             at 2 replicas per object.
FigureSpec paper_figure(int number, const PaperSetup& setup);

/// All six figures.
std::vector<FigureSpec> all_paper_figures(const PaperSetup& setup);

}  // namespace rtsp
