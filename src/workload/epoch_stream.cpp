#include "workload/epoch_stream.hpp"

#include <stdexcept>
#include <vector>

#include "core/feasibility.hpp"

namespace rtsp {

namespace {

/// Free space per server for the working placement, maintained
/// incrementally across mutations.
std::vector<Size> free_space(const SystemModel& model,
                             const ReplicationMatrix& x) {
  std::vector<Size> space(model.num_servers());
  for (ServerId i = 0; i < model.num_servers(); ++i) {
    space[i] = model.capacity(i) - x.used_storage(i, model.objects());
  }
  return space;
}

/// Picks a uniform element of `candidates`; candidates must be non-empty.
template <typename T>
const T& pick(const std::vector<T>& candidates, Rng& rng) {
  return candidates[rng.below(candidates.size())];
}

}  // namespace

std::vector<ReplicationMatrix> make_epoch_stream(const SystemModel& model,
                                                 const ReplicationMatrix& x_start,
                                                 const EpochStreamSpec& spec,
                                                 Rng& rng) {
  if (x_start.num_servers() != model.num_servers() ||
      x_start.num_objects() != model.num_objects()) {
    throw std::invalid_argument("epoch stream: placement/model size mismatch");
  }
  if (!storage_feasible(model, x_start)) {
    throw std::invalid_argument("epoch stream: x_start is not storage-feasible");
  }
  if (spec.churn < 0.0 || spec.churn > 1.0) {
    throw std::invalid_argument("epoch stream: churn outside [0, 1]");
  }

  std::vector<ReplicationMatrix> epochs;
  epochs.reserve(spec.count);
  ReplicationMatrix x = x_start;
  std::vector<Size> space = free_space(model, x);

  const auto holders_of = [&](ObjectId k) {
    std::vector<ServerId> holders;
    x.for_each_replicator(k, [&](ServerId i) { holders.push_back(i); });
    return holders;
  };
  const auto rooms_for = [&](ObjectId k) {
    std::vector<ServerId> rooms;
    for (ServerId j = 0; j < model.num_servers(); ++j) {
      if (!x.test(j, k) && space[j] >= model.object_size(k)) rooms.push_back(j);
    }
    return rooms;
  };

  for (std::size_t e = 0; e < spec.count; ++e) {
    for (std::size_t m = 0; m < spec.moves; ++m) {
      const ObjectId k = static_cast<ObjectId>(rng.below(model.num_objects()));
      const Size size = model.object_size(k);
      // Scale churn by 2^32 once per attempt so the draw count per
      // mutation is fixed (stream stability under spec edits).
      const bool churn_roll =
          rng.below(1u << 31) < static_cast<std::uint64_t>(spec.churn * (1u << 31));
      const std::vector<ServerId> holders = holders_of(k);

      if (churn_roll) {
        if (rng.below(2) == 0) {
          // Add a replica somewhere it fits.
          const std::vector<ServerId> rooms = rooms_for(k);
          if (rooms.empty()) continue;
          const ServerId j = pick(rooms, rng);
          x.set(j, k);
          space[j] -= size;
        } else {
          // Drop a replica, never the last one.
          if (holders.size() < 2) continue;
          const ServerId i = pick(holders, rng);
          x.clear(i, k);
          space[i] += size;
        }
        continue;
      }

      // Relocate one replica i -> j where j has room.
      if (holders.empty()) continue;
      const std::vector<ServerId> rooms = rooms_for(k);
      if (rooms.empty()) continue;
      const ServerId i = pick(holders, rng);
      const ServerId j = pick(rooms, rng);
      x.clear(i, k);
      x.set(j, k);
      space[i] += size;
      space[j] -= size;
    }
    RTSP_REQUIRE(storage_feasible(model, x));
    epochs.push_back(x);
  }
  return epochs;
}

}  // namespace rtsp
