// Balanced random placement generation.
//
// The paper's experiments allocate every object to `r` distinct servers,
// uniformly at random, with every server holding exactly the same number of
// replicas ("replicas equally distributed to servers"), and build X_new the
// same way with zero overlap against X_old. This module implements that as
// a quota-constrained random bipartite assignment with a swap-repair phase.
#pragma once

#include "core/replication.hpp"
#include "support/rng.hpp"

namespace rtsp {

struct BalancedPlacementSpec {
  std::size_t servers = 0;
  std::size_t objects = 0;
  /// Replicas per object; must satisfy replicas <= servers.
  std::size_t replicas_per_object = 1;
  /// Replica positions that must remain empty (e.g. X_old, to force the
  /// paper's 0% overlap). May be null.
  const ReplicationMatrix* forbidden = nullptr;
  /// Replica positions that must be present (counting towards quotas and
  /// per-object counts) — used to dial in a target overlap with X_old.
  /// May be null; must be disjoint from `forbidden` and contain at most
  /// replicas_per_object replicas per object.
  const ReplicationMatrix* pinned = nullptr;
};

/// Generates a placement where every object has exactly
/// `replicas_per_object` replicas, per-server replica counts differ by at
/// most one (exactly equal when servers divides objects*replicas), every
/// `pinned` replica is present and no replica collides with `forbidden`.
/// Throws via RTSP_REQUIRE when the constraints are unsatisfiable after
/// repair attempts.
ReplicationMatrix balanced_random_placement(const BalancedPlacementSpec& spec, Rng& rng);

/// Builds an X_new with (approximately) `overlap_fraction` of X_old's
/// replicas retained in place: per object, round(f*r) random old sites are
/// pinned and the rest are placed on fresh servers, with per-server load
/// kept balanced. f = 0 reproduces the paper's zero-overlap regime; f = 1
/// returns X_old itself. `x_old` must itself have `replicas_per_object`
/// replicas of every object (as the paper's workloads do).
ReplicationMatrix overlapping_balanced_placement(const ReplicationMatrix& x_old,
                                                 std::size_t replicas_per_object,
                                                 double overlap_fraction, Rng& rng);

}  // namespace rtsp
