// Feasibility-preserving target-placement streams for the rebalancing
// daemon (`rtsp serve`) and its chaos harness: starting from a placement,
// each epoch applies a bounded number of random replica relocations (and
// occasional add/remove mutations), rejecting any move that would
// overflow a server — so every generated epoch is storage-feasible by
// construction and the daemon never has to bounce a generated target.
//
// Determinism: the stream is a pure function of (model, x_start, spec,
// rng state); `rtsp epochs --seed S` therefore regenerates byte-identical
// streams, which is what lets scripts/check.sh compare the daemon's final
// placement against the generator's `--final-out`.
#pragma once

#include <vector>

#include "core/replication.hpp"
#include "core/system.hpp"
#include "support/rng.hpp"

namespace rtsp {

struct EpochStreamSpec {
  std::size_t count = 3;   ///< epochs to generate
  std::size_t moves = 8;   ///< mutation attempts per epoch
  /// Fraction of mutation attempts that add or drop a replica instead of
  /// relocating one (adds and drops split evenly). Relocations dominate by
  /// default — they are the paper's workload shape.
  double churn = 0.25;
};

/// Generates spec.count successive targets, each mutated from the previous
/// (the first from `x_start`). Every target is storage-feasible; replica
/// counts never drop to zero. Throws std::invalid_argument when x_start
/// itself is infeasible or dimensions mismatch.
std::vector<ReplicationMatrix> make_epoch_stream(const SystemModel& model,
                                                 const ReplicationMatrix& x_start,
                                                 const EpochStreamSpec& spec,
                                                 Rng& rng);

}  // namespace rtsp
