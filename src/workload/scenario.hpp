// Instance: a complete RTSP problem (model + X_old + X_new), plus a generic
// randomized instance generator used by property tests and examples.
#pragma once

#include "core/feasibility.hpp"
#include "core/system.hpp"
#include "support/rng.hpp"
#include "topology/generators.hpp"

namespace rtsp {

/// A self-contained RTSP problem statement.
struct Instance {
  SystemModel model;
  ReplicationMatrix x_old;
  ReplicationMatrix x_new;
};

/// Knobs for random instances (fuzz/property testing and examples). The
/// defaults produce small, tight instances that still exercise deadlocks.
struct RandomInstanceSpec {
  std::size_t servers = 8;
  std::size_t objects = 24;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 3;
  Size min_object_size = 1;
  Size max_object_size = 4;
  LinkCostRange link_costs{1, 10};
  /// Extra free space per server on top of the minimum needed, measured in
  /// units of the largest object size: 0 reproduces the paper's tight
  /// regime.
  double capacity_slack = 0.0;
  /// When true, X_new avoids every X_old replica (the paper's 0% overlap).
  bool zero_overlap = true;
  double dummy_factor = 1.0;
};

/// Draws a random tree topology, random sizes, balanced X_old / X_new with
/// per-object random replica counts, and minimum (plus slack) capacities.
Instance random_instance(const RandomInstanceSpec& spec, Rng& rng);

/// Per-server minimum capacities max(used_old, used_new).
std::vector<Size> minimum_capacities(const ObjectCatalog& objects,
                                     const ReplicationMatrix& x_old,
                                     const ReplicationMatrix& x_new);

}  // namespace rtsp
