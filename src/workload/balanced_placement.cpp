#include "workload/balanced_placement.hpp"

#include <algorithm>
#include <numeric>

namespace rtsp {

namespace {

bool allowed(const BalancedPlacementSpec& spec, const ReplicationMatrix& partial,
             ServerId s, ObjectId k) {
  if (partial.test(s, k)) return false;
  if (spec.forbidden && spec.forbidden->test(s, k)) return false;
  return true;
}

/// Frees one quota unit on some server allowed for `k` by relocating an
/// already-placed replica of another object from it to `overfull`, a server
/// with spare quota that is disallowed for `k`. Returns the freed server or
/// kDummyServer on failure.
ServerId swap_repair(const BalancedPlacementSpec& spec, ReplicationMatrix& partial,
                     std::vector<std::size_t>& quota, ObjectId k, Rng& rng) {
  std::vector<ServerId> donors;  // spare quota, but disallowed for k
  for (ServerId s = 0; s < spec.servers; ++s) {
    if (quota[s] > 0 && !allowed(spec, partial, s, k)) donors.push_back(s);
  }
  rng.shuffle(donors);
  std::vector<ServerId> hosts;  // allowed for k but out of quota
  for (ServerId s = 0; s < spec.servers; ++s) {
    if (quota[s] == 0 && allowed(spec, partial, s, k)) hosts.push_back(s);
  }
  rng.shuffle(hosts);
  for (ServerId host : hosts) {
    std::vector<ObjectId> residents = partial.objects_on(host);
    rng.shuffle(residents);
    for (ObjectId moved : residents) {
      // Pinned replicas are immovable.
      if (spec.pinned && spec.pinned->test(host, moved)) continue;
      for (ServerId donor : donors) {
        if (!allowed(spec, partial, donor, moved)) continue;
        partial.clear(host, moved);
        partial.set(donor, moved);
        --quota[donor];
        ++quota[host];
        return host;
      }
    }
  }
  return kDummyServer;
}

}  // namespace

ReplicationMatrix balanced_random_placement(const BalancedPlacementSpec& spec,
                                            Rng& rng) {
  RTSP_REQUIRE(spec.servers > 0 && spec.objects > 0);
  RTSP_REQUIRE_MSG(spec.replicas_per_object >= 1 &&
                       spec.replicas_per_object <= spec.servers,
                   "replicas per object must be in [1, servers]");
  if (spec.forbidden) {
    RTSP_REQUIRE(spec.forbidden->num_servers() == spec.servers);
    RTSP_REQUIRE(spec.forbidden->num_objects() == spec.objects);
  }
  if (spec.pinned) {
    RTSP_REQUIRE(spec.pinned->num_servers() == spec.servers);
    RTSP_REQUIRE(spec.pinned->num_objects() == spec.objects);
    if (spec.forbidden) {
      RTSP_REQUIRE_MSG(spec.pinned->overlap(*spec.forbidden) == 0,
                       "pinned and forbidden replicas must be disjoint");
    }
  }

  // Per-server quotas: equal shares, remainder spread over random servers.
  const std::size_t total = spec.objects * spec.replicas_per_object;
  std::vector<std::size_t> quota(spec.servers, total / spec.servers);
  {
    const std::size_t rem = total % spec.servers;
    for (std::size_t idx : sample_without_replacement(rng, spec.servers, rem)) {
      ++quota[idx];
    }
  }

  ReplicationMatrix placement(spec.servers, spec.objects);
  std::vector<std::size_t> still_needed(spec.objects, spec.replicas_per_object);
  if (spec.pinned) {
    for (ObjectId k = 0; k < spec.objects; ++k) {
      for (ServerId s : spec.pinned->replicators_of(k)) {
        RTSP_REQUIRE_MSG(still_needed[k] > 0,
                         "object " << k << " pins more than replicas_per_object");
        RTSP_REQUIRE_MSG(quota[s] > 0,
                         "pinned replicas overload server " << s << "'s quota");
        placement.set(s, k);
        --quota[s];
        --still_needed[k];
      }
    }
  }

  std::vector<ObjectId> order(spec.objects);
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);

  for (ObjectId k : order) {
    for (std::size_t rep = 0; rep < still_needed[k]; ++rep) {
      // Sample a server proportionally to its remaining quota (the
      // configuration-model distribution), which both randomizes the
      // placement and keeps the tail feasible.
      std::size_t weight_total = 0;
      for (ServerId s = 0; s < spec.servers; ++s) {
        if (allowed(spec, placement, s, k)) weight_total += quota[s];
      }
      ServerId chosen = kDummyServer;
      if (weight_total > 0) {
        std::size_t ticket = rng.below(weight_total);
        for (ServerId s = 0; s < spec.servers; ++s) {
          if (!allowed(spec, placement, s, k)) continue;
          if (ticket < quota[s]) {
            chosen = s;
            break;
          }
          ticket -= quota[s];
        }
        RTSP_REQUIRE(!is_dummy(chosen));
      } else {
        chosen = swap_repair(spec, placement, quota, k, rng);
        RTSP_REQUIRE_MSG(!is_dummy(chosen),
                         "balanced placement infeasible for object "
                             << k << " (servers=" << spec.servers
                             << ", replicas=" << spec.replicas_per_object << ")");
      }
      placement.set(chosen, k);
      --quota[chosen];
    }
  }
  return placement;
}

ReplicationMatrix overlapping_balanced_placement(const ReplicationMatrix& x_old,
                                                 std::size_t replicas_per_object,
                                                 double overlap_fraction, Rng& rng) {
  RTSP_REQUIRE(overlap_fraction >= 0.0 && overlap_fraction <= 1.0);
  const std::size_t servers = x_old.num_servers();
  const std::size_t objects = x_old.num_objects();
  const std::size_t keep_per_object = static_cast<std::size_t>(
      overlap_fraction * static_cast<double>(replicas_per_object) + 0.5);

  ReplicationMatrix pinned(servers, objects);
  ReplicationMatrix forbidden(servers, objects);
  for (ObjectId k = 0; k < objects; ++k) {
    std::vector<ServerId> old_sites = x_old.replicators_of(k);
    RTSP_REQUIRE_MSG(old_sites.size() == replicas_per_object,
                     "x_old must have exactly replicas_per_object replicas of "
                     "every object (object " << k << " has " << old_sites.size()
                                             << ")");
    rng.shuffle(old_sites);
    for (std::size_t idx = 0; idx < old_sites.size(); ++idx) {
      if (idx < keep_per_object) pinned.set(old_sites[idx], k);
      else forbidden.set(old_sites[idx], k);
    }
  }

  BalancedPlacementSpec spec;
  spec.servers = servers;
  spec.objects = objects;
  spec.replicas_per_object = replicas_per_object;
  spec.forbidden = &forbidden;
  spec.pinned = &pinned;
  return balanced_random_placement(spec, rng);
}

}  // namespace rtsp
