#include "workload/scale_instance.hpp"

#include <algorithm>

#include "topology/cost_matrix.hpp"

namespace rtsp {

namespace {

/// Draws `count` distinct servers uniformly, excluding those for which
/// `excluded` returns true. Rejection sampling: with count << M the
/// expected number of redraws is a small constant.
template <typename Excluded>
void draw_distinct(std::size_t servers, std::size_t count, Rng& rng,
                   const Excluded& excluded, std::vector<ServerId>& out) {
  out.clear();
  while (out.size() < count) {
    const ServerId s = static_cast<ServerId>(rng.below(servers));
    if (excluded(s)) continue;
    if (std::find(out.begin(), out.end(), s) != out.end()) continue;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end());
}

}  // namespace

Instance make_scale_instance(const ScaleInstanceSpec& spec, Rng& rng) {
  RTSP_REQUIRE(spec.servers > 0 && spec.objects > 0);
  RTSP_REQUIRE(spec.replicas_per_object >= 1);
  RTSP_REQUIRE_MSG(
      !spec.zero_overlap || 2 * spec.replicas_per_object <= spec.servers,
      "zero overlap needs 2*replicas_per_object <= servers");
  RTSP_REQUIRE(spec.min_object_size >= 1 &&
               spec.min_object_size <= spec.max_object_size);
  RTSP_REQUIRE(spec.capacity_slack >= 0.0);

  const Graph g = barabasi_albert_tree(spec.servers, spec.link_costs, rng);
  CostMatrix costs = CostMatrix::from_graph_shortest_paths(g);

  std::vector<Size> sizes(spec.objects);
  for (Size& s : sizes) {
    s = rng.uniform_int(spec.min_object_size, spec.max_object_size);
  }

  ReplicationMatrix x_old(spec.servers, spec.objects);
  ReplicationMatrix x_new(spec.servers, spec.objects);
  std::vector<Size> used_old(spec.servers, 0);
  std::vector<Size> used_new(spec.servers, 0);
  std::vector<ServerId> old_sites;
  std::vector<ServerId> new_sites;
  old_sites.reserve(spec.replicas_per_object);
  new_sites.reserve(spec.replicas_per_object);
  for (ObjectId k = 0; k < spec.objects; ++k) {
    draw_distinct(spec.servers, spec.replicas_per_object, rng,
                  [](ServerId) { return false; }, old_sites);
    for (ServerId i : old_sites) {
      x_old.set(i, k);
      used_old[i] += sizes[k];
    }
    draw_distinct(spec.servers, spec.replicas_per_object, rng,
                  [&](ServerId s) {
                    return spec.zero_overlap &&
                           std::binary_search(old_sites.begin(), old_sites.end(), s);
                  },
                  new_sites);
    for (ServerId i : new_sites) {
      x_new.set(i, k);
      used_new[i] += sizes[k];
    }
  }

  const Size extra = static_cast<Size>(spec.capacity_slack *
                                       static_cast<double>(spec.max_object_size));
  std::vector<Size> caps(spec.servers);
  for (ServerId i = 0; i < spec.servers; ++i) {
    caps[i] = std::max(used_old[i], used_new[i]) + extra;
  }

  SystemModel model(ServerCatalog(std::move(caps)), ObjectCatalog(std::move(sizes)),
                    std::move(costs), spec.dummy_factor);
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

}  // namespace rtsp
