// The exact experimental setups of the paper's Sec. 5.1:
//
//   * 50-server BRITE-like Barabasi-Albert tree, connectivity 1;
//   * per-link costs uniform in {1..10}; server-to-server cost =
//     shortest-path sum;
//   * 1000 objects, dummy-cost constant a = 1;
//   * X_old random and balanced, X_new balanced with 0% overlap
//     ("servers interchanging their objects");
//   * server capacities at the minimum needed for X_old and X_new.
//
// Experiment 1 (Figs. 4-5): equal object sizes (5000), replicas/object 1..5.
// Experiment 2 (Figs. 6-7): sizes uniform in [1000, 5000].
// Experiment 3 (Figs. 8-9): equal sizes, 2 replicas/object, a growing number
// of random servers gets one extra object slot of capacity.
#pragma once

#include "support/rng.hpp"
#include "workload/scenario.hpp"

namespace rtsp {

struct PaperSetup {
  std::size_t servers = 50;
  std::size_t objects = 1000;
  LinkCostRange link_costs{1, 10};
  double dummy_factor = 1.0;  // the paper's a
  Size object_size = 5000;    // equal-size experiments
  Size min_object_size = 1000;  // uniform-size experiment
  Size max_object_size = 5000;
};

/// Experiment 1 instance: equal sizes, `replicas` copies of every object.
Instance make_equal_size_instance(const PaperSetup& setup, std::size_t replicas,
                                  Rng& rng);

/// Experiment 2 instance: object sizes uniform in
/// [min_object_size, max_object_size].
Instance make_uniform_size_instance(const PaperSetup& setup, std::size_t replicas,
                                    Rng& rng);

/// Experiment 3 instance: equal sizes, `replicas` copies (the paper fixes
/// 2), and `servers_with_extra` random servers with one extra object slot.
Instance make_extra_capacity_instance(const PaperSetup& setup, std::size_t replicas,
                                      std::size_t servers_with_extra, Rng& rng);

/// Overlap-sweep instance (part of the evaluation the paper omits for
/// space): equal sizes, `replicas` copies, and X_new retaining
/// `overlap_fraction` of X_old's replicas in place. overlap 0 matches
/// make_equal_size_instance's regime.
Instance make_overlap_instance(const PaperSetup& setup, std::size_t replicas,
                               double overlap_fraction, Rng& rng);

}  // namespace rtsp
