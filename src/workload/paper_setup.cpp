#include "workload/paper_setup.hpp"

#include "workload/balanced_placement.hpp"

namespace rtsp {

namespace {

/// Shared assembly: draw the tree, the two balanced zero-overlap
/// placements, and the minimum capacities.
Instance assemble(const PaperSetup& setup, ObjectCatalog objects,
                  std::size_t replicas, Size extra_per_server,
                  std::size_t servers_with_extra, Rng& rng) {
  RTSP_REQUIRE(replicas >= 1 && replicas * 2 <= setup.servers);

  const Graph g = barabasi_albert_tree(setup.servers, setup.link_costs, rng);
  CostMatrix costs = CostMatrix::from_graph_shortest_paths(g);

  BalancedPlacementSpec old_spec;
  old_spec.servers = setup.servers;
  old_spec.objects = setup.objects;
  old_spec.replicas_per_object = replicas;
  ReplicationMatrix x_old = balanced_random_placement(old_spec, rng);

  BalancedPlacementSpec new_spec = old_spec;
  new_spec.forbidden = &x_old;  // the paper's 0% overlap
  ReplicationMatrix x_new = balanced_random_placement(new_spec, rng);

  std::vector<Size> caps = minimum_capacities(objects, x_old, x_new);
  if (servers_with_extra > 0) {
    RTSP_REQUIRE(servers_with_extra <= setup.servers);
    for (std::size_t idx :
         sample_without_replacement(rng, setup.servers, servers_with_extra)) {
      caps[idx] += extra_per_server;
    }
  }

  SystemModel model(ServerCatalog(std::move(caps)), std::move(objects),
                    std::move(costs), setup.dummy_factor);
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

}  // namespace

Instance make_equal_size_instance(const PaperSetup& setup, std::size_t replicas,
                                  Rng& rng) {
  return assemble(setup, ObjectCatalog::uniform(setup.objects, setup.object_size),
                  replicas, 0, 0, rng);
}

Instance make_uniform_size_instance(const PaperSetup& setup, std::size_t replicas,
                                    Rng& rng) {
  std::vector<Size> sizes(setup.objects);
  for (Size& s : sizes) {
    s = rng.uniform_int(setup.min_object_size, setup.max_object_size);
  }
  return assemble(setup, ObjectCatalog(std::move(sizes)), replicas, 0, 0, rng);
}

Instance make_extra_capacity_instance(const PaperSetup& setup, std::size_t replicas,
                                      std::size_t servers_with_extra, Rng& rng) {
  return assemble(setup, ObjectCatalog::uniform(setup.objects, setup.object_size),
                  replicas, setup.object_size, servers_with_extra, rng);
}

Instance make_overlap_instance(const PaperSetup& setup, std::size_t replicas,
                               double overlap_fraction, Rng& rng) {
  RTSP_REQUIRE(replicas >= 1 && replicas * 2 <= setup.servers);
  const Graph g = barabasi_albert_tree(setup.servers, setup.link_costs, rng);
  CostMatrix costs = CostMatrix::from_graph_shortest_paths(g);

  BalancedPlacementSpec old_spec;
  old_spec.servers = setup.servers;
  old_spec.objects = setup.objects;
  old_spec.replicas_per_object = replicas;
  ReplicationMatrix x_old = balanced_random_placement(old_spec, rng);
  ReplicationMatrix x_new =
      overlapping_balanced_placement(x_old, replicas, overlap_fraction, rng);

  ObjectCatalog objects = ObjectCatalog::uniform(setup.objects, setup.object_size);
  std::vector<Size> caps = minimum_capacities(objects, x_old, x_new);
  SystemModel model(ServerCatalog(std::move(caps)), std::move(objects),
                    std::move(costs), setup.dummy_factor);
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

}  // namespace rtsp
