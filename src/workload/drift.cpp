#include "workload/drift.hpp"

#include <algorithm>

#include "placement/access_cost.hpp"
#include "placement/greedy_place.hpp"
#include "placement/zipf.hpp"

namespace rtsp {

DriftTrace generate_drift_trace(const DriftTraceSpec& spec, Rng& rng) {
  RTSP_REQUIRE(spec.days >= 1);
  RTSP_REQUIRE(spec.servers >= 2 && spec.objects >= 1);
  RTSP_REQUIRE(spec.churn >= 0.0 && spec.churn <= 1.0);
  RTSP_REQUIRE(spec.arrival_rate >= 0.0 && spec.arrival_rate <= 1.0);
  RTSP_REQUIRE_MSG(spec.capacity_factor > 1.0,
                   "capacity factor must exceed 1 for placements to fit");

  const Graph g = barabasi_albert_tree(spec.servers, spec.link_costs, rng);
  const Size capacity = static_cast<Size>(
      spec.capacity_factor * static_cast<double>(spec.objects) *
      static_cast<double>(spec.object_size) / static_cast<double>(spec.servers));
  SystemModel model(ServerCatalog::uniform(spec.servers, capacity),
                    ObjectCatalog::uniform(spec.objects, spec.object_size),
                    CostMatrix::from_graph_shortest_paths(g));

  DriftTrace trace{std::move(model), {}, {}, {}};
  const SystemModel& m = trace.model;

  std::vector<double> rates =
      random_zipf_rates(spec.objects, spec.zipf_theta, spec.total_request_rate, rng);
  const auto fresh_weights = zipf_weights(spec.objects, spec.zipf_theta);

  std::vector<bool> arrived_today(spec.objects, false);
  for (std::size_t day = 0; day < spec.days; ++day) {
    if (day > 0) {
      // Churn: re-roll a fraction of popularities (hits cool, sleepers rise).
      const std::size_t churned = static_cast<std::size_t>(
          spec.churn * static_cast<double>(spec.objects));
      for (std::size_t idx :
           sample_without_replacement(rng, spec.objects, churned)) {
        const std::size_t rank = rng.below(spec.objects);
        rates[idx] = fresh_weights[rank] * spec.total_request_rate;
      }
      // Arrivals: replace objects with brand-new content.
      std::fill(arrived_today.begin(), arrived_today.end(), false);
      const std::size_t arrivals = static_cast<std::size_t>(
          spec.arrival_rate * static_cast<double>(spec.objects));
      for (std::size_t idx :
           sample_without_replacement(rng, spec.objects, arrivals)) {
        arrived_today[idx] = true;
        // New releases tend to be popular: draw from the top half.
        const std::size_t rank = rng.below(std::max<std::size_t>(1, spec.objects / 2));
        rates[idx] = fresh_weights[rank] * spec.total_request_rate;
      }
    }
    trace.daily_rates.push_back(rates);
    const DemandMatrix demand = uniform_demand(spec.servers, rates);
    trace.placements.push_back(greedy_placement(m, demand, {}, rng));

    if (day > 0) {
      DriftTransition tr;
      tr.x_old = trace.placements[day - 1];
      tr.x_new = trace.placements[day];
      // Newly arrived objects have no pre-existing replicas: clear their
      // columns in x_old so their first copy must come from the archive.
      for (ObjectId k = 0; k < spec.objects; ++k) {
        if (!arrived_today[k]) continue;
        ++tr.new_objects;
        for (ServerId i = 0; i < spec.servers; ++i) {
          if (tr.x_old.test(i, k)) tr.x_old.clear(i, k);
        }
      }
      trace.transitions.push_back(std::move(tr));
    }
  }
  return trace;
}

}  // namespace rtsp
