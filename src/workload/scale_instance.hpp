// Scale-tier instance generator: millions of objects, thousands of servers.
//
// The paper-setup generators build balanced placements by weighted sampling
// over all M servers per replica (O(N*M)) — perfect for the paper's 50x1000
// experiments, hopeless at N = 1e6. This generator trades exact balance for
// O(N*r) rejection sampling: replica sets are drawn uniformly per object,
// which concentrates per-server load around N*r/M with small deviation,
// and capacities are accumulated during generation instead of re-scanning
// placements. The result is always storage-feasible for the registry
// builders (capacity >= max(used_old, used_new) + slack).
#pragma once

#include "support/rng.hpp"
#include "topology/generators.hpp"
#include "workload/scenario.hpp"

namespace rtsp {

struct ScaleInstanceSpec {
  std::size_t servers = 2000;
  std::size_t objects = 1'000'000;
  std::size_t replicas_per_object = 2;
  Size min_object_size = 1000;
  Size max_object_size = 5000;
  LinkCostRange link_costs{1, 10};
  double dummy_factor = 1.0;
  /// Extra free space per server, in units of max_object_size.
  double capacity_slack = 1.0;
  /// When true, X_new avoids every X_old replica (the paper's 0% overlap).
  bool zero_overlap = true;
};

/// Draws a BA tree topology, uniform replica sets for X_old / X_new, and
/// accumulated minimum-plus-slack capacities. O(M^2) for the cost matrix
/// plus O(N*r) for the placements.
Instance make_scale_instance(const ScaleInstanceSpec& spec, Rng& rng);

}  // namespace rtsp
