// Popularity-drift traces: multi-day workloads where RTSP is invoked once
// per transition — the paper's motivating scenario ("user preferences change
// with time ... the replication scheme must be changed e.g. on a daily
// basis", Sec. 2.1) and the substrate of the continuous-rebalance example.
//
// Each day has Zipf-distributed request rates. Between days the ranking
// churns (hits cool down) and a fraction of the catalogue is replaced by
// brand-new objects (new releases). A new object has no replica anywhere, so
// its first copy must come from the dummy server — the paper's deep-archive
// fetch — making some dummy transfers legitimately unavoidable.
#pragma once

#include <vector>

#include "core/system.hpp"
#include "support/rng.hpp"
#include "topology/generators.hpp"

namespace rtsp {

struct DriftTraceSpec {
  std::size_t servers = 16;
  std::size_t objects = 120;
  std::size_t days = 5;
  double zipf_theta = 1.0;
  /// Fraction of objects whose popularity is re-rolled each day.
  double churn = 0.25;
  /// Fraction of the catalogue replaced by new objects each day.
  double arrival_rate = 0.05;
  double total_request_rate = 1000.0;
  LinkCostRange link_costs{1, 10};
  Size object_size = 10;
  /// Per-server capacity as a multiple of the fair share
  /// objects * size / servers; must be > 1 for replication to exist.
  double capacity_factor = 1.6;
};

/// One day-to-day transition, ready to feed an RTSP pipeline. x_old is the
/// previous day's placement with the columns of newly arrived objects
/// cleared (their old content is gone; the bits cannot serve as sources).
struct DriftTransition {
  ReplicationMatrix x_old;
  ReplicationMatrix x_new;
  std::size_t new_objects = 0;  ///< arrivals in this transition
};

struct DriftTrace {
  SystemModel model;
  /// Per-day request rates (days entries).
  std::vector<std::vector<double>> daily_rates;
  /// Per-day placements (days entries, greedy placement per day).
  std::vector<ReplicationMatrix> placements;
  /// days - 1 transitions between consecutive placements.
  std::vector<DriftTransition> transitions;
};

/// Generates the full trace: topology, daily demand, daily placements and
/// the RTSP transitions between them.
DriftTrace generate_drift_trace(const DriftTraceSpec& spec, Rng& rng);

}  // namespace rtsp
