#include "workload/scenario.hpp"

#include <algorithm>

#include "workload/balanced_placement.hpp"

namespace rtsp {

std::vector<Size> minimum_capacities(const ObjectCatalog& objects,
                                     const ReplicationMatrix& x_old,
                                     const ReplicationMatrix& x_new) {
  RTSP_REQUIRE(x_old.num_servers() == x_new.num_servers());
  std::vector<Size> caps(x_old.num_servers());
  for (ServerId i = 0; i < x_old.num_servers(); ++i) {
    caps[i] = std::max(x_old.used_storage(i, objects), x_new.used_storage(i, objects));
  }
  return caps;
}

Instance random_instance(const RandomInstanceSpec& spec, Rng& rng) {
  RTSP_REQUIRE(spec.servers >= 2);
  RTSP_REQUIRE(spec.min_replicas >= 1 && spec.min_replicas <= spec.max_replicas);
  RTSP_REQUIRE_MSG(
      spec.max_replicas * (spec.zero_overlap ? 2 : 1) <= spec.servers,
      "not enough servers for the requested replica counts");
  RTSP_REQUIRE(spec.min_object_size >= 1 &&
               spec.min_object_size <= spec.max_object_size);

  const Graph g = barabasi_albert_tree(spec.servers, spec.link_costs, rng);
  CostMatrix costs = CostMatrix::from_graph_shortest_paths(g);

  std::vector<Size> sizes(spec.objects);
  for (Size& s : sizes) {
    s = rng.uniform_int(spec.min_object_size, spec.max_object_size);
  }
  ObjectCatalog objects(std::move(sizes));

  // Per-object replica counts: generate X_old/X_new object by object so the
  // counts can differ per object. Quota balance is only enforced by the
  // random sampling here — property tests don't need exact balance.
  ReplicationMatrix x_old(spec.servers, spec.objects);
  ReplicationMatrix x_new(spec.servers, spec.objects);
  for (ObjectId k = 0; k < spec.objects; ++k) {
    const std::size_t r = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(spec.min_replicas),
                        static_cast<std::int64_t>(spec.max_replicas)));
    const auto old_sites = sample_without_replacement(rng, spec.servers, r);
    for (std::size_t s : old_sites) x_old.set(static_cast<ServerId>(s), k);
    // X_new sites, avoiding X_old when zero_overlap.
    std::vector<ServerId> pool;
    for (ServerId s = 0; s < spec.servers; ++s) {
      if (!spec.zero_overlap || !x_old.test(s, k)) pool.push_back(s);
    }
    rng.shuffle(pool);
    RTSP_REQUIRE(pool.size() >= r);
    for (std::size_t idx = 0; idx < r; ++idx) x_new.set(pool[idx], k);
  }

  std::vector<Size> caps = minimum_capacities(objects, x_old, x_new);
  const Size slack = static_cast<Size>(spec.capacity_slack *
                                       static_cast<double>(spec.max_object_size));
  for (Size& c : caps) c += slack;

  SystemModel model(ServerCatalog(std::move(caps)), std::move(objects),
                    std::move(costs), spec.dummy_factor);
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

}  // namespace rtsp
