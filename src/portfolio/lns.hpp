// Large-neighborhood search over a schedule: destroy a window of actions,
// rebuild it with a registry builder, accept on incremental-evaluator delta.
//
// One round picks a window [lo, hi) of the incumbent, derives the residual
// sub-instance (placement before lo -> placement after hi) by lenient
// prefix replay, asks the repair pipeline to re-plan exactly that placement
// delta, and splices prefix + repair + suffix back together. The splice is
// scored with metrics() hints (everything outside the window is shared) and
// adopted only when (cost, dummies) strictly improves and the incremental
// validator accepts — so the incumbent is valid after every round and its
// cost never increases. See DESIGN.md §13.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "core/cost_model.hpp"
#include "core/incremental.hpp"
#include "support/rng.hpp"

namespace rtsp {

struct LnsOptions {
  std::size_t min_window = 4;    ///< smallest destroy window (actions)
  std::size_t max_window = 48;   ///< largest destroy window (actions)
  std::string repair = "GOLCF";  ///< registry spec rebuilding the window
  std::size_t max_rounds = 0;    ///< 0 = until budget / gap closed / stall
  /// Consecutive rejected rounds before giving up; 0 = no stall cutoff
  /// (an unlimited-budget run then falls back to kDefaultStall).
  std::size_t max_stall = 0;
};

/// Stall cutoff used when neither a budget nor an explicit cutoff bounds
/// the search.
inline constexpr std::size_t kLnsDefaultStall = 64;

/// One destroy/repair round, reported through the on_round callback (the
/// differential tests recompute stats from scratch at each of these points).
struct LnsRound {
  std::size_t round = 0;
  std::size_t window_lo = 0;        ///< destroyed base positions [lo, hi)
  std::size_t window_hi = 0;
  std::size_t repair_actions = 0;   ///< length of the rebuilt window
  bool accepted = false;
  Cost cost_before = 0;
  Cost cost_after = 0;              ///< == cost_before when rejected
};

struct LnsReport {
  std::size_t rounds = 0;
  std::size_t accepts = 0;
  Cost cost_delta = 0;      ///< total accepted change (<= 0)
  bool gap_closed = false;  ///< stopped because cost reached `lower_bound`
};

/// Runs destroy/repair rounds over `eval`'s schedule until the attached
/// WorkMeter is exhausted, the cost meets `lower_bound`, `max_rounds` is
/// reached, or `max_stall` consecutive rounds were rejected. Requires a
/// valid base schedule; leaves `eval` holding the improved incumbent.
LnsReport run_lns(IncrementalEvaluator& eval, const LnsOptions& options, Rng& rng,
                  Cost lower_bound,
                  const std::function<void(const LnsRound&)>& on_round = {});

}  // namespace rtsp
