#include "portfolio/portfolio.hpp"

#include <algorithm>
#include <future>
#include <mutex>
#include <string_view>
#include <utility>

#include "core/feasibility.hpp"
#include "core/incremental.hpp"
#include "heuristics/registry.hpp"
#include "obs/introspect.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace rtsp {

namespace {

/// FNV-1a over the spec string: candidate rng streams are keyed by WHAT is
/// raced, not by roster position, so a pipeline replays identically whether
/// it runs inside the portfolio or alone via run_pipeline_budgeted().
std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Strict total order over incumbent offers. (cost, dummies) is the quality
/// ordering; (candidate, stage) breaks ties deterministically, so the final
/// incumbent does not depend on the order offers arrive in.
struct OfferKey {
  Cost cost = 0;
  std::size_t dummies = 0;
  std::size_t candidate = 0;
  std::size_t stage = 0;

  bool operator<(const OfferKey& o) const {
    if (cost != o.cost) return cost < o.cost;
    if (dummies != o.dummies) return dummies < o.dummies;
    if (candidate != o.candidate) return candidate < o.candidate;
    return stage < o.stage;
  }
};

struct Incumbent {
  std::mutex mu;
  bool has = false;
  OfferKey key;
  Schedule best;
  std::size_t offers = 0;

  void offer(const Schedule& schedule, const OfferKey& k) {
    const std::lock_guard<std::mutex> lock(mu);
    ++offers;
    if (!has || k < key) {
      has = true;
      key = k;
      best = schedule;
      // Swap count and published incumbent depend on arrival interleaving:
      // observability only, never part of the deterministic result (the
      // final incumbent is interleaving-independent by the total order).
      OBS_COUNT("portfolio.incumbent_swaps");
      OBS_GAUGE_SET("portfolio.incumbent_cost", k.cost);
      OBS_GAUGE_SET("portfolio.incumbent_dummies", k.dummies);
      OBS_PROGRESS(set_incumbent(static_cast<std::int64_t>(k.cost),
                                 static_cast<std::int64_t>(k.dummies)));
    }
  }
};

using OfferFn =
    std::function<void(const Schedule&, Cost, std::size_t, std::size_t)>;

/// Runs one pipeline under its own meter, offering the schedule after the
/// build and after every improver stage. Every improver polls the meter at
/// deterministic points, so in tick mode the truncation is reproducible.
BudgetedRun run_candidate(const SystemModel& model, const ReplicationMatrix& x_old,
                          const ReplicationMatrix& x_new, const Pipeline& pipe,
                          Rng rng, const Budget& budget,
                          WorkMeter::Clock::time_point start,
                          const OfferFn& offer) {
  WorkMeter meter;
  budget.arm(meter, start);

  Schedule h = pipe.builder().build(model, x_old, x_new, rng);
  // The builders are not metered internally; their work is proportional to
  // the schedule they emit.
  meter.charge(h.size() + 1);
  std::size_t stage = 0;
  if (offer) {
    offer(h, schedule_cost(model, h), h.dummy_transfer_count(), stage);
  }

  BudgetedRun out;
  if (pipe.improvers().empty()) {
    out.cost = schedule_cost(model, h);
    out.dummy_transfers = h.dummy_transfer_count();
    out.schedule = std::move(h);
    out.ticks_used = meter.ticks();
    out.completed = true;
    return out;
  }

  IncrementalEvaluator eval(model, x_old, x_new, std::move(h));
  eval.set_meter(&meter);
  bool truncated = false;
  for (const auto& imp : pipe.improvers()) {
    if (meter.exhausted()) {
      truncated = true;
      break;
    }
    imp->improve_incremental(eval, rng);
    ++stage;
    if (offer) offer(eval.schedule(), eval.cost(), eval.dummy_transfers(), stage);
  }
  out.cost = eval.cost();
  out.dummy_transfers = eval.dummy_transfers();
  out.ticks_used = meter.ticks();
  out.completed = !truncated && !meter.exhausted();
  eval.set_meter(nullptr);
  out.schedule = eval.take_schedule();
  return out;
}

}  // namespace

std::vector<std::string> default_portfolio_algorithms() {
  return {
      "GOLCF+H1+H2+OP1",    // the paper's flagship chain
      "RDFP+H1+H2+OP1",     // sharded redistribution seed
      "GSDFP+H1+H2+OP1",    // sharded global-smallest seed
      "AR+H1+H2+OP1",       // randomized seed, diversification
      "GOLCF+H1H2FIX+OP1",  // dummy-fixpoint variant
      "GOLCF+SA",           // stochastic baseline
  };
}

BudgetedRun run_pipeline_budgeted(const SystemModel& model,
                                  const ReplicationMatrix& x_old,
                                  const ReplicationMatrix& x_new,
                                  const std::string& spec, std::uint64_t seed,
                                  const Budget& budget) {
  const Pipeline pipe = make_pipeline(spec);
  Rng rng(mix64(seed, stable_hash(spec)));
  return run_candidate(model, x_old, x_new, pipe, std::move(rng), budget,
                       WorkMeter::Clock::now(), {});
}

PortfolioResult solve_portfolio(const SystemModel& model,
                                const ReplicationMatrix& x_old,
                                const ReplicationMatrix& x_new, std::uint64_t seed,
                                const PortfolioOptions& options) {
  const auto start = WorkMeter::Clock::now();
  const std::vector<std::string> algos = options.algorithms.empty()
                                             ? default_portfolio_algorithms()
                                             : options.algorithms;
  // Parse every spec before any work so an unknown name fails fast.
  std::vector<Pipeline> pipes;
  pipes.reserve(algos.size());
  for (const std::string& spec : algos) pipes.push_back(make_pipeline(spec));

  Incumbent incumbent;
  std::vector<BudgetedRun> runs(algos.size());
  OBS_PROGRESS(set_stage("portfolio.race"));
  OBS_PROGRESS(set_ticks(0, options.budget.ticks));
  {
    OBS_SPAN("portfolio.race");
    ThreadPool pool(options.threads);
    std::vector<std::future<void>> futures;
    futures.reserve(algos.size());
    for (std::size_t i = 0; i < algos.size(); ++i) {
      futures.push_back(pool.submit([&, i] {
        OBS_SPAN("portfolio.candidate");
        OBS_COUNT("portfolio.candidates");
        Rng rng(mix64(seed, stable_hash(algos[i])));
        runs[i] = run_candidate(
            model, x_old, x_new, pipes[i], std::move(rng), options.budget, start,
            [&](const Schedule& s, Cost c, std::size_t dummies, std::size_t stage) {
              incumbent.offer(s, OfferKey{c, dummies, i, stage});
            });
      }));
    }
    for (auto& f : futures) f.get();
  }

  PortfolioResult result;
  result.lower_bound = cost_lower_bound(model, x_old, x_new);
  result.candidates.reserve(algos.size());
  for (std::size_t i = 0; i < algos.size(); ++i) {
    result.candidates.push_back(CandidateOutcome{algos[i], runs[i].cost,
                                                 runs[i].dummy_transfers,
                                                 runs[i].ticks_used,
                                                 runs[i].completed});
    result.race_ticks = std::max(result.race_ticks, runs[i].ticks_used);
  }
  RTSP_REQUIRE(incumbent.has);
  result.incumbent_offers = incumbent.offers;
  result.winner = algos[incumbent.key.candidate];
  result.race_cost = incumbent.key.cost;
  OBS_GAUGE_SET("portfolio.lower_bound", result.lower_bound);
  OBS_PROGRESS(set_lower_bound(static_cast<std::int64_t>(result.lower_bound)));
  OBS_PROGRESS(set_ticks(result.race_ticks, options.budget.ticks));
  OBS_LOG_INFO("portfolio race finished",
               obs::log_field("winner", result.winner),
               obs::log_field("race_cost",
                              static_cast<std::int64_t>(result.race_cost)),
               obs::log_field("offers", result.incumbent_offers),
               obs::log_field("race_ticks", result.race_ticks));
  Schedule best = std::move(incumbent.best);

  // Attribute the delivered actions to the race result so `rtsp explain`
  // maps them to a PORTFOLIO:<algo> builder stage; the raced candidates ran
  // on pool threads where no recorder is armed.
  {
    const prov::StageScope stage(prov::StageKind::Builder,
                                 "PORTFOLIO:" + result.winner);
    for (const Action& a : best) prov::note_emit(a);
  }

  IncrementalEvaluator eval(model, x_old, x_new, std::move(best));
  // LNS budget: the virtual time left on the winner's worker thread (its
  // candidate finished early — that worker keeps polishing the incumbent
  // until its own deadline T), or whatever remains until the shared
  // absolute wall deadline. Deterministic because the winner is.
  const std::uint64_t winner_ticks = runs[incumbent.key.candidate].ticks_used;
  WorkMeter lns_meter;
  bool lns_possible = options.lns_enabled;
  if (options.budget.ticks > 0) {
    if (options.budget.ticks > winner_ticks) {
      lns_meter.set_tick_limit(options.budget.ticks - winner_ticks);
    } else {
      lns_possible = false;
    }
  }
  if (options.budget.wall_ms > 0.0) {
    Budget wall_only;
    wall_only.wall_ms = options.budget.wall_ms;
    wall_only.arm(lns_meter, start);
  }
  if (lns_possible) {
    OBS_PROGRESS(set_stage("portfolio.lns"));
    eval.set_meter(&lns_meter);
    Rng lns_rng(mix64(seed, stable_hash("LNS")));
    result.lns = run_lns(eval, options.lns, lns_rng, result.lower_bound);
    eval.set_meter(nullptr);
  }

  result.cost = eval.cost();
  result.dummy_transfers = eval.dummy_transfers();
  OBS_PROGRESS(set_stage("portfolio.done"));
  OBS_PROGRESS(set_incumbent(static_cast<std::int64_t>(result.cost),
                             static_cast<std::int64_t>(result.dummy_transfers)));
  OBS_LOG_INFO("portfolio solve done",
               obs::log_field("cost", static_cast<std::int64_t>(result.cost)),
               obs::log_field("dummy_transfers", result.dummy_transfers),
               obs::log_field("lower_bound",
                              static_cast<std::int64_t>(result.lower_bound)));
  result.schedule = eval.take_schedule();
  return result;
}

}  // namespace rtsp
