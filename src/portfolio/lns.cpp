#include "portfolio/lns.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/state.hpp"
#include "heuristics/registry.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "support/assert.hpp"

namespace rtsp {

LnsReport run_lns(IncrementalEvaluator& eval, const LnsOptions& options, Rng& rng,
                  Cost lower_bound,
                  const std::function<void(const LnsRound&)>& on_round) {
  RTSP_REQUIRE(options.min_window >= 1);
  RTSP_REQUIRE(options.max_window >= options.min_window);
  RTSP_REQUIRE_MSG(eval.base_valid(), "LNS requires a valid incumbent");
  OBS_SPAN("portfolio.lns");

  const Pipeline repair = make_pipeline(options.repair);
  WorkMeter* meter = eval.meter();
  // Without any stopping rule the rejection loop would never terminate:
  // fall back to the default stall cutoff.
  std::size_t max_stall = options.max_stall;
  const bool metered = meter != nullptr && meter->limited();
  if (!metered && options.max_rounds == 0 && max_stall == 0) {
    max_stall = kLnsDefaultStall;
  }

  LnsReport report;
  ExecutionState state_lo(eval.model(), eval.x_old());
  ExecutionState state_hi(eval.model(), eval.x_old());
  std::size_t stall = 0;
  while (true) {
    if (eval.cost() <= lower_bound && eval.dummy_transfers() == 0) {
      report.gap_closed = true;
      break;
    }
    if (options.max_rounds != 0 && report.rounds >= options.max_rounds) break;
    if (max_stall != 0 && stall >= max_stall) break;
    if (eval.out_of_budget()) break;
    const Schedule& base = eval.schedule();
    const std::size_t length = base.size();
    if (length == 0) break;

    OBS_COUNT("portfolio.lns.rounds");
    LnsRound round;
    round.round = report.rounds;
    round.cost_before = eval.cost();

    // Destroy: a uniformly placed window of w actions.
    const std::size_t span = options.max_window - options.min_window + 1;
    const std::size_t w =
        std::min(length, options.min_window + static_cast<std::size_t>(rng.below(span)));
    const std::size_t lo = static_cast<std::size_t>(rng.below(length - w + 1));
    const std::size_t hi = lo + w;
    round.window_lo = lo;
    round.window_hi = hi;

    // Residual sub-instance: placement entering the window -> leaving it.
    eval.state_before(lo, state_lo);
    state_hi = state_lo;
    for (std::size_t u = lo; u < hi; ++u) state_hi.apply_lenient(base[u]);
    if (meter != nullptr) meter->charge(w);

    // Repair: re-plan the window's placement delta with the registry
    // pipeline. Its emits are not part of the observed schedule, so the
    // provenance recorder is disarmed for the duration.
    Schedule repaired;
    {
      const prov::Suspend no_record;
      repaired = repair.run(eval.model(), state_lo.placement(), state_hi.placement(),
                            rng);
    }
    if (meter != nullptr) meter->charge(repaired.size() + 1);
    round.repair_actions = repaired.size();

    // Splice prefix + repaired window + suffix.
    std::vector<Action> spliced;
    spliced.reserve(length - w + repaired.size());
    spliced.insert(spliced.end(), base.actions().begin(),
                   base.actions().begin() + static_cast<std::ptrdiff_t>(lo));
    spliced.insert(spliced.end(), repaired.actions().begin(),
                   repaired.actions().end());
    spliced.insert(spliced.end(),
                   base.actions().begin() + static_cast<std::ptrdiff_t>(hi),
                   base.actions().end());
    Schedule cand(std::move(spliced));

    const auto m = eval.metrics(cand, lo, length - hi);
    const bool better =
        m.cost < eval.cost() ||
        (m.cost == eval.cost() && m.dummy_transfers < eval.dummy_transfers());
    if (better && eval.is_valid(cand, m)) {
      // The stage frame attributes the adopted rewrite to this LNS round;
      // frames are only created for accepted rounds to keep the stage table
      // proportional to useful work.
      const prov::StageScope stage(prov::StageKind::Improver,
                                   "LNS:" + std::to_string(round.round));
      prov::note_round(static_cast<int>(round.round));
      eval.adopt(std::move(cand), m);
      round.accepted = true;
      round.cost_after = eval.cost();
      report.cost_delta += round.cost_after - round.cost_before;
      ++report.accepts;
      OBS_COUNT("portfolio.lns.accepts");
      stall = 0;
    } else {
      round.cost_after = round.cost_before;
      ++stall;
    }
    ++report.rounds;
    if (on_round) on_round(round);
  }
  return report;
}

}  // namespace rtsp
