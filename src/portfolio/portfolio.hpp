// Anytime optimizer portfolio: races registry pipelines under a shared
// budget, keeps the best schedule seen, then spends the remaining budget on
// LNS destroy/repair rounds over the incumbent. See DESIGN.md §13.
//
// Determinism contract: with a tick-only budget the result (schedule,
// costs, gap, per-candidate tick counts, provenance) is a pure function of
// (instance, seed, options) — independent of thread count, machine speed
// and obs settings. Candidate rng streams are keyed by the spec string, so
// a pipeline run alone under run_pipeline_budgeted() replays exactly the
// run it gets inside the portfolio — the basis of the property-suite
// invariant portfolio_cost <= min(single-pipeline costs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/replication.hpp"
#include "core/schedule.hpp"
#include "core/system.hpp"
#include "portfolio/budget.hpp"
#include "portfolio/lns.hpp"

namespace rtsp {

struct PortfolioOptions {
  /// Registry specs to race; empty selects default_portfolio_algorithms().
  std::vector<std::string> algorithms;
  Budget budget;
  bool lns_enabled = true;
  LnsOptions lns;
  std::size_t threads = 0;  ///< race pool size; 0 = hardware concurrency
};

/// The default race roster: the paper's flagship chain plus re-seeded and
/// stochastic variants. OP1P is deliberately absent — its budgeted stop
/// points depend on the worker count, which would break cross-machine
/// reproducibility (DESIGN.md §13).
std::vector<std::string> default_portfolio_algorithms();

/// Outcome of one raced candidate (in roster order).
struct CandidateOutcome {
  std::string algo;
  Cost cost = 0;                  ///< the candidate's own final cost
  std::size_t dummy_transfers = 0;
  std::uint64_t ticks_used = 0;
  bool completed = false;         ///< ran its whole chain within budget
};

/// A single pipeline truncated at the budget — the anytime baseline.
struct BudgetedRun {
  Schedule schedule;
  Cost cost = 0;
  std::size_t dummy_transfers = 0;
  std::uint64_t ticks_used = 0;
  bool completed = false;
};

struct PortfolioResult {
  Schedule schedule;
  Cost cost = 0;
  std::size_t dummy_transfers = 0;
  Cost lower_bound = 0;
  std::string winner;             ///< algo that produced the race incumbent
  Cost race_cost = 0;             ///< incumbent cost before LNS
  std::vector<CandidateOutcome> candidates;
  LnsReport lns;
  std::uint64_t race_ticks = 0;   ///< max over candidates (virtual clock)
  std::size_t incumbent_offers = 0;

  /// Relative optimality gap against the core lower bound.
  double gap() const {
    if (cost <= lower_bound) return 0.0;
    const double denom = lower_bound > 0 ? static_cast<double>(lower_bound) : 1.0;
    return static_cast<double>(cost - lower_bound) / denom;
  }
};

/// Runs `spec` start-to-finish under `budget`: the builder runs unmetered
/// (charged by schedule length), each improver polls the meter at its
/// deterministic stop points. The rng stream is derived from (seed, spec)
/// exactly like the portfolio's candidate streams.
BudgetedRun run_pipeline_budgeted(const SystemModel& model,
                                  const ReplicationMatrix& x_old,
                                  const ReplicationMatrix& x_new,
                                  const std::string& spec, std::uint64_t seed,
                                  const Budget& budget);

/// Races the roster across a thread pool, folds every stage result into a
/// deterministic incumbent, then improves it with LNS until the budget is
/// spent or the gap closes. Throws std::invalid_argument on unknown specs.
PortfolioResult solve_portfolio(const SystemModel& model,
                                const ReplicationMatrix& x_old,
                                const ReplicationMatrix& x_new, std::uint64_t seed,
                                const PortfolioOptions& options);

}  // namespace rtsp
