// Anytime budget specification for the optimizer portfolio (DESIGN.md §13).
#pragma once

#include <chrono>
#include <cstdint>

#include "core/work_meter.hpp"

namespace rtsp {

/// Dual-mode budget. `ticks > 0` arms the deterministic virtual work-tick
/// limit (counted through the incremental evaluator — bit-reproducible
/// across machines); `wall_ms > 0` arms a wall-clock deadline. Both may be
/// armed together (whichever trips first stops the run); both zero means
/// run every stage to completion.
struct Budget {
  std::uint64_t ticks = 0;
  double wall_ms = 0.0;

  bool limited() const { return ticks > 0 || wall_ms > 0.0; }
  /// Tick-only (or unlimited) budgets yield bit-reproducible runs.
  bool deterministic() const { return wall_ms <= 0.0; }

  /// Arms `meter` with this budget, the deadline measured from `start`.
  void arm(WorkMeter& meter, WorkMeter::Clock::time_point start) const {
    if (ticks > 0) meter.set_tick_limit(ticks);
    if (wall_ms > 0.0) {
      meter.set_deadline(start + std::chrono::duration_cast<WorkMeter::Clock::duration>(
                                     std::chrono::duration<double, std::milli>(wall_ms)));
    }
  }
};

}  // namespace rtsp
