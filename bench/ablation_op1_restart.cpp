// Ablation (beyond the paper): OP1's restart policy. The paper rescans from
// the start after every adopted change; the Continue policy resumes at the
// current object. We compare final cost and wall time on GOLCF schedules.
#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "heuristics/op1.hpp"
#include "heuristics/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  using namespace rtsp::bench;
  const FigureOptions opt = parse_figure_options(argc, argv);

  std::cout << "=== Ablation: OP1 restart policy (paper: from-start) ===\n\n";
  TextTable table;
  table.header({"replicas/object", "cost restart", "cost continue",
                "ms restart", "ms continue"});
  for (std::size_t r = 2; r <= 5; ++r) {
    StatAccumulator cost_restart, cost_continue, ms_restart, ms_continue;
    for (std::size_t trial = 0; trial < opt.sweep.trials; ++trial) {
      Rng rng = Rng::for_trial(opt.sweep.base_seed, mix64(r, trial));
      const Instance inst = make_equal_size_instance(opt.setup, r, rng);
      Rng b1(mix64(trial, 7));
      const Schedule base =
          make_pipeline("GOLCF+H1+H2").run(inst.model, inst.x_old, inst.x_new, b1);
      Rng unused(0);

      Op1Options from_start;  // paper default
      Timer t1;
      const Schedule h1 = Op1Improver(from_start).improve(
          inst.model, inst.x_old, inst.x_new, base, unused);
      ms_restart.add(t1.millis());
      cost_restart.add(static_cast<double>(schedule_cost(inst.model, h1)));

      Op1Options cont;
      cont.restart = Op1Options::Restart::Continue;
      Timer t2;
      const Schedule h2 = Op1Improver(cont).improve(inst.model, inst.x_old,
                                                    inst.x_new, base, unused);
      ms_continue.add(t2.millis());
      cost_continue.add(static_cast<double>(schedule_cost(inst.model, h2)));
    }
    table.add_row(
        {std::to_string(r),
         format_mean_err(cost_restart.mean(), cost_restart.stderr_mean()),
         format_mean_err(cost_continue.mean(), cost_continue.stderr_mean()),
         format_mean_err(ms_restart.mean(), ms_restart.stderr_mean()),
         format_mean_err(ms_continue.mean(), ms_continue.stderr_mean())});
  }
  table.print(std::cout);
  return 0;
}
