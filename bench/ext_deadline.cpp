// Extension experiment: the cost/deadline trade-off (Sec. 2.2 future work).
//
// Two regimes, one insight each:
//  * On the paper's balanced workload the makespan is bound by destination
//    ports — every server must receive its fixed inbound volume — so no
//    rewrite can shorten it. We report this negative result first.
//  * Under fan-out (few source replicas, many new destinations — a release
//    push), sources are the bottleneck and the deadline repairs
//    (re-sourcing off hot replicas, hoisting critical transfers so fresh
//    copies become sources earlier) buy real makespan at modest cost.
#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "extension/deadline.hpp"
#include "heuristics/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace rtsp;

/// Release-push instance: `objects` hot objects, each on one random server
/// in X_old, each on `fanout` random servers in X_new; ample capacity.
Instance fanout_instance(std::size_t servers, std::size_t objects,
                         std::size_t fanout, Rng& rng) {
  const Graph g = barabasi_albert_tree(servers, {1, 10}, rng);
  ReplicationMatrix x_old(servers, objects);
  ReplicationMatrix x_new(servers, objects);
  for (ObjectId k = 0; k < objects; ++k) {
    const ServerId origin = static_cast<ServerId>(rng.below(servers));
    x_old.set(origin, k);
    x_new.set(origin, k);
    auto sites = sample_without_replacement(rng, servers, fanout);
    for (std::size_t s : sites) x_new.set(static_cast<ServerId>(s), k);
  }
  ObjectCatalog catalogue = ObjectCatalog::uniform(objects, 100);
  std::vector<Size> caps = minimum_capacities(catalogue, x_old, x_new);
  SystemModel model(ServerCatalog(std::move(caps)), std::move(catalogue),
                    CostMatrix::from_graph_shortest_paths(g));
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtsp::bench;
  FigureOptions opt = parse_figure_options(argc, argv);

  // Part 1: the negative result on the paper's balanced workload.
  {
    PaperSetup setup = opt.setup;
    if (setup.objects == 1000) setup.objects = 300;
    Rng rng = Rng::for_trial(opt.sweep.base_seed, 0);
    const Instance inst = make_equal_size_instance(setup, 2, rng);
    Rng arng(1);
    const Schedule base = make_pipeline("GOLCF+H1+H2+OP1")
                              .run(inst.model, inst.x_old, inst.x_new, arng);
    const auto base_report = simulate_makespan(inst.model, inst.x_old, base, {});
    DeadlineOptions dopts;
    dopts.deadline = base_report.makespan * 0.7;
    dopts.max_iterations = 50;
    const DeadlineResult r =
        meet_deadline(inst.model, inst.x_old, inst.x_new, base, dopts);
    std::cout << "=== Part 1: paper workload (balanced, r=2) ===\n"
              << "base makespan " << base_report.makespan
              << ", after deadline repair " << r.report.makespan
              << " — destination ports bind: every server must receive its\n"
              << "fixed inbound volume, so the deadline rewrites find "
              << (r.report.makespan < base_report.makespan ? "little" : "no")
              << " slack (expected).\n\n";
  }

  // Part 2: fan-out regime — deadline sweep.
  std::cout << "=== Part 2: release push (30 servers, 20 hot objects, "
               "fan-out 10, "
            << opt.sweep.trials << " trials) ===\n\n";
  const std::vector<double> fractions = {1.0, 0.8, 0.6, 0.4, 0.3};
  TextTable table;
  table.header({"deadline (x base makespan)", "met", "cost increase %",
                "makespan reduction %"});
  for (double frac : fractions) {
    StatAccumulator met, cost_up, mk_down;
    for (std::size_t trial = 0; trial < opt.sweep.trials; ++trial) {
      Rng rng = Rng::for_trial(opt.sweep.base_seed, trial + 1);
      const Instance inst = fanout_instance(30, 20, 10, rng);
      Rng arng = Rng::for_trial(opt.sweep.base_seed ^ 0x99, trial);
      // Cost-minimal baseline: every destination pulls from the nearest
      // source; OP1 keeps it cheap but source-hot.
      const Schedule base = make_pipeline("GOLCF+OP1")
                                .run(inst.model, inst.x_old, inst.x_new, arng);
      const Cost base_cost = schedule_cost(inst.model, base);
      const auto base_report = simulate_makespan(inst.model, inst.x_old, base, {});

      DeadlineOptions dopts;
      dopts.deadline = base_report.makespan * frac;
      const DeadlineResult r =
          meet_deadline(inst.model, inst.x_old, inst.x_new, base, dopts);
      met.add(r.met ? 1.0 : 0.0);
      cost_up.add(100.0 * static_cast<double>(r.cost - base_cost) /
                  static_cast<double>(base_cost));
      mk_down.add(100.0 * (base_report.makespan - r.report.makespan) /
                  base_report.makespan);
    }
    char label[32];
    std::snprintf(label, sizeof label, "%.1f", frac);
    char met_str[32];
    std::snprintf(met_str, sizeof met_str, "%.0f%%", 100.0 * met.mean());
    table.add_row({label, met_str,
                   format_mean_err(cost_up.mean(), cost_up.stderr_mean()),
                   format_mean_err(mk_down.mean(), mk_down.stderr_mean())});
  }
  table.print(std::cout);
  std::cout << "\n(deadline repair: re-source the critical transfer off hot"
            << " sources or hoist it earlier; see extension/deadline.hpp)\n";
  return 0;
}
