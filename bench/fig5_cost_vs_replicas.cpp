// Fig. 5 — implementation cost vs replicas per object (equal object sizes).
//
// Paper's observations to reproduce: GOLCF+H1+H2+OP1 beats GOLCF+OP1 (dummy
// elimination translates into cost savings because dummy links are priced
// above every real path).
#include "bench_common.hpp"

int main(int argc, char** argv) { return rtsp::bench::figure_main(5, argc, argv); }
