// Google-benchmark microbenchmarks for the substrates: topology generation
// and shortest paths, replication-matrix queries, balanced placement, the
// makespan simulator.
#include <benchmark/benchmark.h>

#include "core/replication.hpp"
#include "extension/makespan.hpp"
#include "heuristics/registry.hpp"
#include "topology/cost_matrix.hpp"
#include "topology/generators.hpp"
#include "workload/balanced_placement.hpp"
#include "workload/paper_setup.hpp"

namespace {

using namespace rtsp;

void BM_BarabasiAlbertTree(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(barabasi_albert_tree(n, {1, 10}, rng).num_edges());
  }
}

void BM_AllPairsShortestPaths(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Graph g = barabasi_albert_tree(n, {1, 10}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CostMatrix::from_graph_shortest_paths(g).max_cost());
  }
}

void BM_BalancedPlacement(benchmark::State& state) {
  BalancedPlacementSpec spec;
  spec.servers = 50;
  spec.objects = static_cast<std::size_t>(state.range(0));
  spec.replicas_per_object = static_cast<std::size_t>(state.range(1));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balanced_random_placement(spec, rng).total_replicas());
  }
}

void BM_ZeroOverlapPair(benchmark::State& state) {
  BalancedPlacementSpec spec;
  spec.servers = 50;
  spec.objects = 1000;
  spec.replicas_per_object = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    const ReplicationMatrix x_old = balanced_random_placement(spec, rng);
    BalancedPlacementSpec spec2 = spec;
    spec2.forbidden = &x_old;
    benchmark::DoNotOptimize(balanced_random_placement(spec2, rng).total_replicas());
  }
}

void BM_NearestReplicator(benchmark::State& state) {
  PaperSetup setup;
  setup.objects = 1000;
  Rng rng(5);
  const Instance inst = make_equal_size_instance(setup, 3, rng);
  ServerId i = 0;
  ObjectId k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.model.nearest_replicator(i, k, inst.x_old));
    i = (i + 1) % 50;
    k = (k + 7) % 1000;
  }
}

// Sparse vs dense replication stores: mutation and iteration throughput on
// the same random replica pattern (range(0) = 0 dense, 1 sparse).
void BM_ReplicationStoreMutation(benchmark::State& state) {
  const auto store = state.range(0) == 0 ? ReplicationMatrix::Store::kDense
                                         : ReplicationMatrix::Store::kSparse;
  constexpr std::size_t kServers = 200;
  constexpr std::size_t kObjects = 10'000;
  Rng rng(5);
  ReplicationMatrix x(kServers, kObjects, store);
  for (auto _ : state) {
    const ServerId i = static_cast<ServerId>(rng.below(kServers));
    const ObjectId k = static_cast<ObjectId>(rng.below(kObjects));
    if (rng.below(3) != 0) {
      x.set(i, k);
    } else {
      x.clear(i, k);
    }
    benchmark::DoNotOptimize(x.total_replicas());
  }
}

void BM_ReplicationStoreIteration(benchmark::State& state) {
  const auto store = state.range(0) == 0 ? ReplicationMatrix::Store::kDense
                                         : ReplicationMatrix::Store::kSparse;
  constexpr std::size_t kServers = 200;
  constexpr std::size_t kObjects = 10'000;
  Rng rng(5);
  ReplicationMatrix x(kServers, kObjects, store);
  for (ObjectId k = 0; k < kObjects; ++k) {
    for (int r = 0; r < 3; ++r) {
      x.set(static_cast<ServerId>(rng.below(kServers)), k);
    }
  }
  x.prepare_shared_reads();
  ObjectId k = 0;
  for (auto _ : state) {
    std::size_t sum = 0;
    x.for_each_replicator(k, [&](ServerId i) { sum += i; });
    benchmark::DoNotOptimize(sum);
    k = (k + 1) % kObjects;
  }
}

void BM_MakespanSimulation(benchmark::State& state) {
  PaperSetup setup;
  setup.objects = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Instance inst = make_equal_size_instance(setup, 2, rng);
  Rng arng(6);
  const Schedule h =
      make_pipeline("GOLCF+H1+H2").run(inst.model, inst.x_old, inst.x_new, arng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_makespan(inst.model, inst.x_old, h).makespan);
  }
}

}  // namespace

BENCHMARK(BM_BarabasiAlbertTree)->Arg(50)->Arg(500);
BENCHMARK(BM_AllPairsShortestPaths)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BalancedPlacement)
    ->Args({1000, 2})
    ->Args({1000, 5})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ZeroOverlapPair)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NearestReplicator);
BENCHMARK(BM_ReplicationStoreMutation)->Arg(0)->Arg(1);
BENCHMARK(BM_ReplicationStoreIteration)->Arg(0)->Arg(1);
BENCHMARK(BM_MakespanSimulation)->Arg(250)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
