// Google-benchmark microbenchmarks for the substrates: topology generation
// and shortest paths, replication-matrix queries, balanced placement, the
// makespan simulator.
#include <benchmark/benchmark.h>

#include "extension/makespan.hpp"
#include "heuristics/registry.hpp"
#include "topology/cost_matrix.hpp"
#include "topology/generators.hpp"
#include "workload/balanced_placement.hpp"
#include "workload/paper_setup.hpp"

namespace {

using namespace rtsp;

void BM_BarabasiAlbertTree(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(barabasi_albert_tree(n, {1, 10}, rng).num_edges());
  }
}

void BM_AllPairsShortestPaths(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Graph g = barabasi_albert_tree(n, {1, 10}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CostMatrix::from_graph_shortest_paths(g).max_cost());
  }
}

void BM_BalancedPlacement(benchmark::State& state) {
  BalancedPlacementSpec spec;
  spec.servers = 50;
  spec.objects = static_cast<std::size_t>(state.range(0));
  spec.replicas_per_object = static_cast<std::size_t>(state.range(1));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balanced_random_placement(spec, rng).total_replicas());
  }
}

void BM_ZeroOverlapPair(benchmark::State& state) {
  BalancedPlacementSpec spec;
  spec.servers = 50;
  spec.objects = 1000;
  spec.replicas_per_object = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  for (auto _ : state) {
    const ReplicationMatrix x_old = balanced_random_placement(spec, rng);
    BalancedPlacementSpec spec2 = spec;
    spec2.forbidden = &x_old;
    benchmark::DoNotOptimize(balanced_random_placement(spec2, rng).total_replicas());
  }
}

void BM_NearestReplicator(benchmark::State& state) {
  PaperSetup setup;
  setup.objects = 1000;
  Rng rng(5);
  const Instance inst = make_equal_size_instance(setup, 3, rng);
  ServerId i = 0;
  ObjectId k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.model.nearest_replicator(i, k, inst.x_old));
    i = (i + 1) % 50;
    k = (k + 7) % 1000;
  }
}

void BM_MakespanSimulation(benchmark::State& state) {
  PaperSetup setup;
  setup.objects = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Instance inst = make_equal_size_instance(setup, 2, rng);
  Rng arng(6);
  const Schedule h =
      make_pipeline("GOLCF+H1+H2").run(inst.model, inst.x_old, inst.x_new, arng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_makespan(inst.model, inst.x_old, h).makespan);
  }
}

}  // namespace

BENCHMARK(BM_BarabasiAlbertTree)->Arg(50)->Arg(500);
BENCHMARK(BM_AllPairsShortestPaths)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BalancedPlacement)
    ->Args({1000, 2})
    ->Args({1000, 5})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ZeroOverlapPair)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NearestReplicator);
BENCHMARK(BM_MakespanSimulation)->Arg(250)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
