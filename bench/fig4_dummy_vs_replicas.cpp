// Fig. 4 — number of dummy transfers vs replicas per object (equal object
// sizes, 0% overlap, tight capacities).
//
// Paper's observations to reproduce: dummy transfers fall as replicas
// increase; GOLCF beats AR; H1+H2 nearly nullify dummies from two replicas
// per object on.
#include "bench_common.hpp"

int main(int argc, char** argv) { return rtsp::bench::figure_main(4, argc, argv); }
