// Extended-evaluation experiment: overlap sweep. The paper fixes overlap at
// 0% and notes a larger evaluation was cut for space; here X_new retains a
// per-object fraction of X_old's replicas in place (popularity drifts
// slowly), at r = 4 with equal sizes so keep = 0..3 replicas per object.
//
// Headline finding: dummy transfers are an artifact of *zero* overlap —
// retaining even one replica per object keeps a source alive throughout the
// migration and dummies drop to exactly 0, while implementation cost falls
// roughly linearly with the kept fraction (fewer outstanding replicas to
// move). The H1+H2 machinery only matters in the 0%-overlap regime.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  using namespace rtsp::bench;
  FigureOptions opt = parse_figure_options(argc, argv);

  std::vector<SweepPoint> points;
  for (int pct : {0, 25, 50, 75}) {
    const PaperSetup setup = opt.setup;
    const double f = pct / 100.0;
    char label[16];
    std::snprintf(label, sizeof label, "%d%%", pct);
    points.push_back({label, [setup, f](Rng& rng) {
                        return make_overlap_instance(setup, 4, f, rng);
                      }});
  }
  run_figure("Ablation", "overlap sweep (r=4, equal sizes)", points, opt,
             {"GOLCF", "GOLCF+H1+H2", "GOLCF+H1+H2+OP1"}, Metric::DummyTransfers,
             "overlap");
  return 0;
}
