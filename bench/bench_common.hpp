// Shared scaffolding for the paper-figure benchmark binaries.
//
// Every fig*_ binary reproduces one figure of the paper's Sec. 5: it takes
// the canonical figure definition from experiment/figures.hpp, runs it over
// RTSP_TRIALS seeds and prints the series as a table (optionally dumping
// CSV). Absolute numbers differ from the paper (our BRITE-like topology
// sample is not the authors'); orderings and trends are the reproduction
// target — see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/figures.hpp"
#include "experiment/report.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

namespace rtsp::bench {

struct FigureOptions {
  PaperSetup setup;
  SweepConfig sweep;
  std::string csv_path;
};

/// Common flags: --trials/RTSP_TRIALS, --seed/RTSP_SEED, --threads,
/// --servers, --objects (scale knobs), --csv (dump path).
inline FigureOptions parse_figure_options(int argc, char** argv) {
  const CliOptions cli(argc, argv);
  FigureOptions opt;
  opt.setup.servers =
      static_cast<std::size_t>(cli.get_int("servers", "RTSP_SERVERS", 50));
  opt.setup.objects =
      static_cast<std::size_t>(cli.get_int("objects", "RTSP_OBJECTS", 1000));
  opt.sweep.trials = static_cast<std::size_t>(cli.get_int("trials", "RTSP_TRIALS", 5));
  opt.sweep.base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", "RTSP_SEED", 20070326));
  opt.sweep.threads =
      static_cast<std::size_t>(cli.get_int("threads", "RTSP_THREADS", 0));
  opt.csv_path = cli.get_string("csv", "RTSP_CSV", "");
  return opt;
}

/// Runs the sweep and prints the figure header, the headline series and the
/// companion metric (cost for dummy figures and vice versa).
inline void run_figure(const std::string& figure_id, const std::string& title,
                       const std::vector<SweepPoint>& points, FigureOptions opt,
                       std::vector<std::string> algorithms, Metric headline_metric,
                       const std::string& x_label) {
  opt.sweep.algorithms = std::move(algorithms);
  std::cout << "=== " << figure_id << ": " << title << " ===\n";
  std::cout << "setup: " << opt.setup.servers << " servers (BA tree, link costs 1-10), "
            << opt.setup.objects << " objects, a=1, " << opt.sweep.trials
            << " trials, seed " << opt.sweep.base_seed << "\n\n";
  Timer timer;
  const SweepResult result = run_sweep(points, opt.sweep);
  print_series(std::cout, result, headline_metric, x_label);
  std::cout << '\n';
  const Metric companion = headline_metric == Metric::DummyTransfers
                               ? Metric::ImplementationCost
                               : Metric::DummyTransfers;
  print_series(std::cout, result, companion, x_label);
  std::printf("\n[%s done in %.1fs]\n", figure_id.c_str(), timer.seconds());
  if (!opt.csv_path.empty()) {
    maybe_dump_csv(opt.csv_path, result, x_label);
    std::cout << "CSV written to " << opt.csv_path << '\n';
  }
}

/// Runs a canonical paper figure.
inline void run_figure(const FigureSpec& fig, const FigureOptions& opt) {
  run_figure(fig.id, fig.title, fig.points, opt, fig.algorithms, fig.headline,
             fig.x_label);
}

/// Convenience main body for the fig* binaries.
inline int figure_main(int number, int argc, char** argv) {
  const FigureOptions opt = parse_figure_options(argc, argv);
  run_figure(paper_figure(number, opt.setup), opt);
  return 0;
}

/// Figs. 4-7 x-axis helper kept for ablation benches that tweak the maker.
template <typename MakeInstance>
std::vector<SweepPoint> replicas_sweep(const PaperSetup& setup,
                                       MakeInstance make_instance) {
  std::vector<SweepPoint> points;
  for (std::size_t r = 1; r <= 5; ++r) {
    points.push_back({std::to_string(r), [setup, r, make_instance](Rng& rng) {
                        return make_instance(setup, r, rng);
                      }});
  }
  return points;
}

}  // namespace rtsp::bench
