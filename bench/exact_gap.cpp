// Optimality gap of the heuristics against the branch-and-bound optimum on
// tiny instances (the only scale where the optimum is computable — RTSP
// decision is NP-complete, Sec. 3.4).
#include <iostream>

#include "core/cost_model.hpp"
#include "exact/branch_and_bound.hpp"
#include "heuristics/registry.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  const CliOptions cli(argc, argv);
  const std::size_t trials =
      static_cast<std::size_t>(cli.get_int("trials", "RTSP_TRIALS", 20));
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", "RTSP_SEED", 4));

  const std::vector<std::string> algos = {"AR", "RDF", "GSDF", "GOLCF",
                                          "GOLCF+H1+H2", "GOLCF+H1+H2+OP1"};
  std::cout << "=== Heuristic cost / optimal cost on tiny instances "
            << "(5 servers, 6 objects, " << trials << " instances) ===\n\n";

  std::vector<StatAccumulator> ratio(algos.size());
  std::size_t solved = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng = Rng::for_trial(base_seed, trial);
    RandomInstanceSpec spec;
    spec.servers = 5;
    spec.objects = 6;
    spec.max_replicas = 2;
    spec.max_object_size = 2;
    const Instance inst = random_instance(spec, rng);
    BnbOptions opts;
    opts.max_nodes = 2'000'000;
    const BnbResult exact = solve_exact(inst, opts);
    if (!exact.proved_optimal) continue;
    ++solved;
    for (std::size_t a = 0; a < algos.size(); ++a) {
      Rng arng = Rng::for_trial(base_seed ^ 0xabcd, mix64(trial, a));
      const Schedule h =
          make_pipeline(algos[a]).run(inst.model, inst.x_old, inst.x_new, arng);
      const Cost c = schedule_cost(inst.model, h);
      ratio[a].add(exact.cost > 0
                       ? static_cast<double>(c) / static_cast<double>(exact.cost)
                       : 1.0);
    }
  }

  TextTable table;
  table.header({"algorithm", "mean cost/opt", "worst cost/opt"});
  for (std::size_t a = 0; a < algos.size(); ++a) {
    table.add_row({algos[a], format_mean_err(ratio[a].mean(), ratio[a].stderr_mean()),
                   format_mean_err(ratio[a].max(), 0)});
  }
  table.print(std::cout);
  std::cout << "\n(" << solved << "/" << trials
            << " instances solved to proven optimality)\n";
  return 0;
}
