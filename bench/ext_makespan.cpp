// Extension experiment (the paper's Sec. 2.2 future work): how do the
// cost-optimized schedules behave under *parallel* execution? For each
// planner we report sequential cost, event-driven makespan at 1 and 4 ports
// per server, and the bulk-synchronous round count of the phase partition.
#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "extension/makespan.hpp"
#include "extension/phases.hpp"
#include "heuristics/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  using namespace rtsp::bench;
  FigureOptions opt = parse_figure_options(argc, argv);
  // Moderate size keeps the simulation sweep quick by default.
  if (opt.setup.objects == 1000) opt.setup.objects = 400;

  const std::vector<std::string> algos = {"RDF", "GSDF", "GOLCF", "GOLCF+H1+H2",
                                          "GOLCF+H1+H2+OP1"};
  std::cout << "=== Extension: parallel execution of cost-optimized schedules"
            << " (r=2, " << opt.setup.objects << " objects, " << opt.sweep.trials
            << " trials) ===\n\n";

  TextTable table;
  table.header({"planner", "cost", "makespan 1 port", "makespan 4 ports",
                "speedup@4", "rounds (phases)"});
  for (const std::string& spec : algos) {
    StatAccumulator cost, mk1, mk4, speedup, rounds;
    for (std::size_t trial = 0; trial < opt.sweep.trials; ++trial) {
      Rng rng = Rng::for_trial(opt.sweep.base_seed, trial);
      const Instance inst = make_equal_size_instance(opt.setup, 2, rng);
      Rng arng = Rng::for_trial(opt.sweep.base_seed ^ 0x5a5a, trial);
      const Schedule h =
          make_pipeline(spec).run(inst.model, inst.x_old, inst.x_new, arng);
      RTSP_REQUIRE(Validator::is_valid(inst.model, inst.x_old, inst.x_new, h));
      cost.add(static_cast<double>(schedule_cost(inst.model, h)));
      const auto one = simulate_makespan(inst.model, inst.x_old, h, {1.0, 1});
      const auto four = simulate_makespan(inst.model, inst.x_old, h, {1.0, 4});
      mk1.add(one.makespan);
      mk4.add(four.makespan);
      speedup.add(four.speedup);
      rounds.add(static_cast<double>(
          phase_partition(inst.model, inst.x_old, h, 1).rounds()));
    }
    table.add_row({spec, format_mean_err(cost.mean(), cost.stderr_mean()),
                   format_mean_err(mk1.mean(), mk1.stderr_mean()),
                   format_mean_err(mk4.mean(), mk4.stderr_mean()),
                   format_mean_err(speedup.mean(), speedup.stderr_mean()),
                   format_mean_err(rounds.mean(), rounds.stderr_mean())});
  }
  table.print(std::cout);
  std::cout << "\n(model: transfer time = size x link / bandwidth; per-server"
            << " port limit; rounds = bulk-synchronous phase partition)\n";
  return 0;
}
