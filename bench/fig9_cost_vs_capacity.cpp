// Fig. 9 — implementation cost as more servers acquire one extra object
// slot of capacity (equal sizes, 2 replicas per object).
//
// Paper's observation to reproduce: GOLCF+H1+H2+OP1 stays below GOLCF+OP1,
// with the gap growing as slack appears.
#include "bench_common.hpp"

int main(int argc, char** argv) { return rtsp::bench::figure_main(9, argc, argv); }
