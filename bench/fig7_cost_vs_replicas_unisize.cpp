// Fig. 7 — implementation cost vs replicas per object with object sizes
// uniform in [1000, 5000].
#include "bench_common.hpp"

int main(int argc, char** argv) { return rtsp::bench::figure_main(7, argc, argv); }
