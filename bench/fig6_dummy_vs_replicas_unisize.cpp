// Fig. 6 — number of dummy transfers vs replicas per object with object
// sizes uniform in [1000, 5000] (the paper plots GOLCF variants only).
#include "bench_common.hpp"

int main(int argc, char** argv) { return rtsp::bench::figure_main(6, argc, argv); }
