// Google-benchmark microbenchmarks: runtime scaling of the schedule
// builders and improvers with instance size (servers fixed at the paper's
// 50; objects and replicas swept).
//
// `--json PATH` writes the google-benchmark JSON report to PATH (shorthand
// for --benchmark_out=PATH --benchmark_out_format=json); the `perf` CMake
// target uses it to refresh BENCH_perf_heuristics.json at the repo root.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "workload/paper_setup.hpp"

namespace {

using namespace rtsp;

Instance make_instance(std::size_t objects, std::size_t replicas, std::uint64_t seed) {
  PaperSetup setup;
  setup.objects = objects;
  Rng rng(seed);
  return make_equal_size_instance(setup, replicas, rng);
}

void run_pipeline_bench(benchmark::State& state, const std::string& spec) {
  const std::size_t objects = static_cast<std::size_t>(state.range(0));
  const std::size_t replicas = static_cast<std::size_t>(state.range(1));
  const Instance inst = make_instance(objects, replicas, 99);
  const Pipeline pipeline = make_pipeline(spec);
  std::uint64_t trial = 0;
  for (auto _ : state) {
    Rng rng = Rng::for_trial(123, trial++);
    const Schedule h = pipeline.run(inst.model, inst.x_old, inst.x_new, rng);
    benchmark::DoNotOptimize(h.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(objects * replicas));
}

void BM_Builder_AR(benchmark::State& state) { run_pipeline_bench(state, "AR"); }
void BM_Builder_GOLCF(benchmark::State& state) { run_pipeline_bench(state, "GOLCF"); }
void BM_Builder_RDF(benchmark::State& state) { run_pipeline_bench(state, "RDF"); }
void BM_Builder_GSDF(benchmark::State& state) { run_pipeline_bench(state, "GSDF"); }
void BM_Chain_H1H2(benchmark::State& state) {
  run_pipeline_bench(state, "GOLCF+H1+H2");
}
void BM_Chain_Full(benchmark::State& state) {
  run_pipeline_bench(state, "GOLCF+H1+H2+OP1");
}

void BM_Validator(benchmark::State& state) {
  const std::size_t objects = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(objects, 2, 7);
  Rng rng(1);
  const Schedule h =
      make_pipeline("GOLCF").run(inst.model, inst.x_old, inst.x_new, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Validator::is_valid(inst.model, inst.x_old, inst.x_new, h));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(h.size()));
}

void BM_ScheduleCost(benchmark::State& state) {
  const Instance inst = make_instance(1000, 3, 7);
  Rng rng(1);
  const Schedule h =
      make_pipeline("GOLCF").run(inst.model, inst.x_old, inst.x_new, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_cost(inst.model, h));
  }
}

}  // namespace

BENCHMARK(BM_Builder_AR)->Args({250, 2})->Args({1000, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Builder_GOLCF)
    ->Args({250, 2})
    ->Args({1000, 2})
    ->Args({1000, 5})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Builder_RDF)->Args({1000, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Builder_GSDF)->Args({1000, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Chain_H1H2)->Args({250, 1})->Args({250, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Chain_Full)
    ->Args({250, 2})
    ->Args({1000, 3})  // the paper's Fig. 5 workload; tracked in EXPERIMENTS.md
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Validator)->Arg(250)->Arg(1000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ScheduleCost)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  // Expand --json PATH before google-benchmark parses the command line.
  std::vector<char*> args;
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[++i]);
      storage.push_back("--benchmark_out_format=json");
    } else {
      storage.push_back(argv[i]);
    }
  }
  for (std::string& s : storage) args.push_back(s.data());
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
