// Google-benchmark microbenchmarks: runtime scaling of the schedule
// builders and improvers with instance size (servers fixed at the paper's
// 50; objects and replicas swept).
//
// `--json PATH` writes the google-benchmark JSON report to PATH (shorthand
// for --benchmark_out=PATH --benchmark_out_format=json); the `perf` CMake
// target uses it to refresh BENCH_perf_heuristics.json at the repo root.
//
// Obs flags (recording is off unless one is given, so the timed loops stay
// uninstrumented by default):
//   --trace-out PATH    Chrome trace JSON of the pipeline/heuristic spans
//   --metrics-out PATH  metrics snapshot (.json or .csv)
//   --obs               print the metrics + span summary after the run
#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cost_model.hpp"
#include "core/incremental.hpp"
#include "core/validator.hpp"
#include "heuristics/registry.hpp"
#include "portfolio/portfolio.hpp"
#include "io/instance_binary_io.hpp"
#include "io/instance_io.hpp"
#include "obs/export.hpp"
#include "obs/introspect.hpp"
#include "obs/logging.hpp"
#include "obs/obs.hpp"
#include "support/net.hpp"
#include "workload/paper_setup.hpp"
#include "workload/scale_instance.hpp"
#include "daemon/daemon.hpp"
#include "io/checkpoint_io.hpp"
#include "io/epoch_io.hpp"
#include "workload/epoch_stream.hpp"

namespace {

using namespace rtsp;

Instance make_instance(std::size_t objects, std::size_t replicas, std::uint64_t seed) {
  PaperSetup setup;
  setup.objects = objects;
  Rng rng(seed);
  return make_equal_size_instance(setup, replicas, rng);
}

void run_pipeline_bench(benchmark::State& state, const std::string& spec) {
  const std::size_t objects = static_cast<std::size_t>(state.range(0));
  const std::size_t replicas = static_cast<std::size_t>(state.range(1));
  const Instance inst = make_instance(objects, replicas, 99);
  const Pipeline pipeline = make_pipeline(spec);
  std::uint64_t trial = 0;
  double builder_ms = 0.0;
  double improver_ms = 0.0;
  for (auto _ : state) {
    Rng rng = Rng::for_trial(123, trial++);
    PipelineTiming timing;
    const Schedule h =
        pipeline.run(inst.model, inst.x_old, inst.x_new, rng, &timing);
    builder_ms += timing.builder_seconds * 1e3;
    improver_ms += timing.improver_seconds * 1e3;
    benchmark::DoNotOptimize(h.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(objects * replicas));
  // Per-iteration stage split, reported alongside the usual wall time (and
  // in the --json output as extra counters).
  state.counters["builder_ms"] =
      benchmark::Counter(builder_ms, benchmark::Counter::kAvgIterations);
  state.counters["improver_ms"] =
      benchmark::Counter(improver_ms, benchmark::Counter::kAvgIterations);
}

void BM_Builder_AR(benchmark::State& state) { run_pipeline_bench(state, "AR"); }
void BM_Builder_GOLCF(benchmark::State& state) { run_pipeline_bench(state, "GOLCF"); }
void BM_Builder_RDF(benchmark::State& state) { run_pipeline_bench(state, "RDF"); }
void BM_Builder_GSDF(benchmark::State& state) { run_pipeline_bench(state, "GSDF"); }
void BM_Builder_RDFP(benchmark::State& state) { run_pipeline_bench(state, "RDFP"); }
void BM_Builder_GSDFP(benchmark::State& state) { run_pipeline_bench(state, "GSDFP"); }
void BM_Chain_H1H2(benchmark::State& state) {
  run_pipeline_bench(state, "GOLCF+H1+H2");
}
void BM_Chain_Full(benchmark::State& state) {
  run_pipeline_bench(state, "GOLCF+H1+H2+OP1");
}

void BM_Validator(benchmark::State& state) {
  const std::size_t objects = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(objects, 2, 7);
  Rng rng(1);
  const Schedule h =
      make_pipeline("GOLCF").run(inst.model, inst.x_old, inst.x_new, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Validator::is_valid(inst.model, inst.x_old, inst.x_new, h));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(h.size()));
}

void BM_ScheduleCost(benchmark::State& state) {
  const Instance inst = make_instance(1000, 3, 7);
  Rng rng(1);
  const Schedule h =
      make_pipeline("GOLCF").run(inst.model, inst.x_old, inst.x_new, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_cost(inst.model, h));
  }
}

// --- Scale tier: large instances through the sharded builders and the
// binary codec (the cases the ISSUE's acceptance criteria track).

Instance make_scale(std::size_t servers, std::size_t objects) {
  ScaleInstanceSpec spec;
  spec.servers = servers;
  spec.objects = objects;
  spec.replicas_per_object = 2;
  Rng rng(5);
  return make_scale_instance(spec, rng);
}

void run_scale_builder_bench(benchmark::State& state, const std::string& spec) {
  const std::size_t objects = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_scale(200, objects);
  const Pipeline pipeline = make_pipeline(spec);
  std::uint64_t trial = 0;
  for (auto _ : state) {
    Rng rng = Rng::for_trial(9, trial++);
    const Schedule h = pipeline.run(inst.model, inst.x_old, inst.x_new, rng);
    benchmark::DoNotOptimize(h.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(objects));
}

void BM_Scale_RDF(benchmark::State& state) { run_scale_builder_bench(state, "RDF"); }
void BM_Scale_RDFP(benchmark::State& state) { run_scale_builder_bench(state, "RDFP"); }
void BM_Scale_GSDFP(benchmark::State& state) {
  run_scale_builder_bench(state, "GSDFP");
}

void BM_Scale_LoadBinary(benchmark::State& state) {
  const Instance inst = make_scale(200, 50'000);
  std::ostringstream os(std::ios::binary);
  write_instance_binary(os, inst);
  const std::string img = os.str();
  for (auto _ : state) {
    const Instance back = instance_from_binary(
        reinterpret_cast<const unsigned char*>(img.data()), img.size());
    benchmark::DoNotOptimize(back.model.num_objects());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.size()));
}

void BM_Scale_LoadText(benchmark::State& state) {
  const Instance inst = make_scale(200, 50'000);
  const std::string text = instance_to_text(inst);
  for (auto _ : state) {
    const Instance back = instance_from_text(text);
    benchmark::DoNotOptimize(back.model.num_objects());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

// --- Obs overhead: the same mid-size pipeline solve with recording off vs
// fully armed (metrics + tracing). The pair quantifies the flight
// recorder's cost on the hot path; bench_compare tracks both so a
// regression in either the instrumented or the uninstrumented path fails
// `scripts/check.sh --bench`.

void run_obs_overhead_bench(benchmark::State& state, bool recording) {
  const Instance inst = make_instance(1000, 2, 99);
  const Pipeline pipeline = make_pipeline("GOLCF+H1+H2+OP1");
  const bool was_enabled = obs::enabled();
  obs::set_enabled(recording);
  std::uint64_t trial = 0;
  for (auto _ : state) {
    Rng rng = Rng::for_trial(123, trial++);
    const Schedule h = pipeline.run(inst.model, inst.x_old, inst.x_new, rng);
    benchmark::DoNotOptimize(h.size());
    if (recording) {
      // Drain the per-thread span buffers so they never saturate and each
      // iteration pays the same recording cost.
      benchmark::DoNotOptimize(obs::collect_trace().size());
    }
  }
  obs::set_enabled(was_enabled);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}

void BM_ObsRecordingOff(benchmark::State& state) {
  run_obs_overhead_bench(state, false);
}
void BM_ObsRecordingOn(benchmark::State& state) {
  run_obs_overhead_bench(state, true);
}

// --- Structured-logging overhead: the same solve with the logger disarmed
// (every OBS_LOG_* pays one relaxed level-gate load) vs armed at debug into
// the in-memory ring (the per-pass builder/improver records actually
// materialize). No file sink, so the pair isolates record construction +
// ring insertion from disk speed.

void run_logging_bench(benchmark::State& state, bool armed) {
  const Instance inst = make_instance(1000, 2, 99);
  const Pipeline pipeline = make_pipeline("GOLCF+H1+H2+OP1");
  auto& logger = rtsp::obs::Logger::instance();
  if (armed) {
    logger.configure(rtsp::obs::LogLevel::Debug, "");
    logger.clear();
  }
  std::uint64_t trial = 0;
  for (auto _ : state) {
    Rng rng = Rng::for_trial(123, trial++);
    const Schedule h = pipeline.run(inst.model, inst.x_old, inst.x_new, rng);
    benchmark::DoNotOptimize(h.size());
  }
  if (armed) {
    benchmark::DoNotOptimize(logger.records_emitted());
    logger.shutdown();
    logger.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}

void BM_LoggingOff(benchmark::State& state) { run_logging_bench(state, false); }
void BM_LoggingOn(benchmark::State& state) { run_logging_bench(state, true); }

// --- Scrape under load: the solve loop timed bare vs with the introspect
// server up and a client thread scraping /metrics + /progress as fast as it
// can. The acceptance bar is <2% solve-side overhead: snapshots and
// exposition rendering happen on the handler pool, never the solver thread.

void run_scrape_bench(benchmark::State& state, bool scraping) {
  const Instance inst = make_instance(1000, 2, 99);
  const Pipeline pipeline = make_pipeline("GOLCF+H1+H2+OP1");
  const bool was_enabled = rtsp::obs::enabled();
  rtsp::obs::set_enabled(true);
  std::unique_ptr<rtsp::obs::IntrospectServer> server;
  std::atomic<bool> done{false};
  std::thread scraper;
  std::uint64_t scrapes = 0;
  if (scraping) {
    rtsp::obs::IntrospectOptions opts;
    opts.port = 0;
    server = std::make_unique<rtsp::obs::IntrospectServer>(opts);
    const std::uint16_t port = server->port();
    scraper = std::thread([&done, port, &scrapes] {
      while (!done.load(std::memory_order_relaxed)) {
        try {
          benchmark::DoNotOptimize(
              rtsp::net::http_get("127.0.0.1", port, "/metrics").body.size());
          benchmark::DoNotOptimize(
              rtsp::net::http_get("127.0.0.1", port, "/progress").body.size());
          ++scrapes;
        } catch (const std::exception&) {
          break;  // server went away mid-teardown
        }
      }
    });
  }
  std::uint64_t trial = 0;
  for (auto _ : state) {
    Rng rng = Rng::for_trial(123, trial++);
    const Schedule h = pipeline.run(inst.model, inst.x_old, inst.x_new, rng);
    benchmark::DoNotOptimize(h.size());
  }
  if (scraping) {
    done.store(true, std::memory_order_relaxed);
    scraper.join();
    server->stop();
    state.counters["scrapes"] = benchmark::Counter(
        static_cast<double>(scrapes), benchmark::Counter::kAvgIterations);
  }
  rtsp::obs::set_enabled(was_enabled);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}

void BM_ScrapeLoadOff(benchmark::State& state) { run_scrape_bench(state, false); }
void BM_ScrapeLoadOn(benchmark::State& state) { run_scrape_bench(state, true); }

// --- Anytime portfolio: racing/incumbent overhead and LNS repair
// throughput. The first pair runs the same pipeline at the same tick budget
// bare vs wrapped in a portfolio-of-one (threads=1, LNS off), so their gap
// is exactly the race/incumbent machinery.

void BM_Portfolio_SingleBudgeted(benchmark::State& state) {
  const Instance inst = make_instance(1000, 2, 99);
  Budget budget;
  budget.ticks = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const BudgetedRun run = run_pipeline_budgeted(
        inst.model, inst.x_old, inst.x_new, "GOLCF+H1+H2+OP1", 123, budget);
    benchmark::DoNotOptimize(run.cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(budget.ticks));
}

void BM_Portfolio_OfOne(benchmark::State& state) {
  const Instance inst = make_instance(1000, 2, 99);
  PortfolioOptions opts;
  opts.algorithms = {"GOLCF+H1+H2+OP1"};
  opts.budget.ticks = static_cast<std::uint64_t>(state.range(0));
  opts.threads = 1;
  opts.lns_enabled = false;
  for (auto _ : state) {
    const PortfolioResult r =
        solve_portfolio(inst.model, inst.x_old, inst.x_new, 123, opts);
    benchmark::DoNotOptimize(r.cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(opts.budget.ticks));
}

void BM_Portfolio_LnsRepair(benchmark::State& state) {
  const Instance inst = make_instance(1000, 2, 99);
  Rng build_rng(1);
  const Schedule incumbent = make_pipeline("GOLCF+H1+H2+OP1")
                                 .run(inst.model, inst.x_old, inst.x_new,
                                      build_rng);
  LnsOptions opts;
  opts.max_rounds = 64;
  std::uint64_t trial = 0;
  std::size_t rounds = 0;
  for (auto _ : state) {
    IncrementalEvaluator eval(inst.model, inst.x_old, inst.x_new, incumbent);
    Rng rng = Rng::for_trial(7, trial++);
    const LnsReport report = run_lns(eval, opts, rng, /*lower_bound=*/0);
    rounds += report.rounds;
    benchmark::DoNotOptimize(eval.cost());
  }
  // items/s = destroy/repair rounds per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
}

// --- Daemon hot paths: epoch admission + convergence throughput, and
// checkpoint write latency. The admission bench runs a fully in-memory
// DaemonCore (no state dir) over a pre-generated epoch stream: each
// iteration admits every epoch and drains the queue, so items/s is
// end-to-end epochs folded per second (residual replan + solve + apply).

void BM_EpochAdmission(benchmark::State& state) {
  const Instance inst = make_instance(250, 2, 99);
  Rng stream_rng(17);
  EpochStreamSpec spec;
  spec.count = 8;
  spec.moves = 16;
  const std::vector<ReplicationMatrix> epochs =
      make_epoch_stream(inst.model, inst.x_old, spec, stream_rng);
  daemon::DaemonOptions opts;
  opts.seed = 5;
  opts.queue_depth = epochs.size();
  std::size_t processed = 0;
  for (auto _ : state) {
    daemon::DaemonCore core(inst.model, inst.x_old, opts);
    for (const ReplicationMatrix& target : epochs) core.admit(target);
    core.run_until_idle();
    processed += epochs.size();
    benchmark::DoNotOptimize(core.placement_crc());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(processed));
}

// Serialization + atomic-replace cost of one snapshot at the paper scale,
// fsync off so tmpfs rename speed (not disk flush) is what's measured —
// the same switch the daemon tests and chaos harness run under.
void BM_CheckpointWrite(benchmark::State& state) {
  const Instance inst = make_instance(250, 2, 99);
  CheckpointDoc doc;
  doc.generation = 3;
  doc.seed = 5;
  doc.last_seq = 12;
  doc.clock = 4096;
  doc.servers = inst.model.num_servers();
  doc.objects = inst.model.num_objects();
  doc.placement = placement_pairs(inst.x_old);
  for (std::uint64_t i = 0; i < 4; ++i) {
    CheckpointQueueEntry entry;
    entry.seq = 9 + i;
    entry.target = placement_pairs(inst.x_new);
    doc.queue.push_back(std::move(entry));
  }
  const std::string path =
      std::filesystem::temp_directory_path() / "rtsp_bench_checkpoint";
  for (auto _ : state) {
    write_checkpoint_file(path, doc, /*fsync=*/false);
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_Builder_AR)->Args({250, 2})->Args({1000, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Builder_GOLCF)
    ->Args({250, 2})
    ->Args({1000, 2})
    ->Args({1000, 5})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Builder_RDF)->Args({1000, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Builder_GSDF)->Args({1000, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Builder_RDFP)->Args({1000, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Builder_GSDFP)->Args({1000, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Chain_H1H2)->Args({250, 1})->Args({250, 2})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Chain_Full)
    ->Args({250, 2})
    ->Args({1000, 3})  // the paper's Fig. 5 workload; tracked in EXPERIMENTS.md
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Validator)->Arg(250)->Arg(1000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ScheduleCost)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Scale_RDF)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scale_RDFP)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scale_GSDFP)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scale_LoadBinary)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scale_LoadText)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ObsRecordingOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ObsRecordingOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoggingOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoggingOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScrapeLoadOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScrapeLoadOn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Portfolio_SingleBudgeted)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Portfolio_OfOne)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Portfolio_LnsRepair)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EpochAdmission)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckpointWrite)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  // Expand --json PATH and strip the obs flags before google-benchmark
  // parses the command line (it rejects flags it does not know).
  std::string trace_out;
  std::string metrics_out;
  bool obs_summary = false;
  const auto take_value = [&](const char* flag, int& i, std::string& out) {
    const std::size_t flen = std::strlen(flag);
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      out = argv[++i];
      return true;
    }
    if (std::strncmp(argv[i], flag, flen) == 0 && argv[i][flen] == '=') {
      out = argv[i] + flen + 1;
      return true;
    }
    return false;
  };
  std::vector<char*> args;
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[++i]);
      storage.push_back("--benchmark_out_format=json");
    } else if (take_value("--trace-out", i, trace_out) ||
               take_value("--metrics-out", i, metrics_out)) {
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      obs_summary = true;
    } else {
      storage.push_back(argv[i]);
    }
  }
  if (obs_summary || !trace_out.empty() || !metrics_out.empty()) {
    rtsp::obs::set_enabled(true);
  }
  for (std::string& s : storage) args.push_back(s.data());
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (rtsp::obs::enabled()) {
    const auto snap = rtsp::obs::MetricsRegistry::instance().snapshot();
    if (!metrics_out.empty()) {
      rtsp::obs::write_metrics_file(metrics_out, snap);
      std::cout << "obs metrics written to " << metrics_out << '\n';
    }
    const auto events = rtsp::obs::collect_trace();
    if (!trace_out.empty()) {
      rtsp::obs::write_trace_file(trace_out, events);
      std::cout << "obs trace written to " << trace_out << " (" << events.size()
                << " events; open in ui.perfetto.dev)\n";
    }
    if (obs_summary) {
      rtsp::obs::print_metrics_summary(std::cout, snap);
      rtsp::obs::print_span_summary(std::cout, events);
    }
  }
  return 0;
}
