// Ablation (beyond the paper): topology sensitivity. The paper evaluates on
// a BRITE Barabasi-Albert tree only; here Fig. 4's headline comparison
// (GOLCF vs GOLCF+H1+H2 dummy transfers at r = 2) is repeated across
// topology families with the same cost range, server and object counts.
#include <functional>

#include "bench_common.hpp"
#include "workload/balanced_placement.hpp"

namespace {

using namespace rtsp;

using TopologyFactory = std::function<Graph(std::size_t, Rng&)>;

/// Paper workload on an arbitrary topology.
Instance instance_on(const TopologyFactory& topo, const PaperSetup& setup,
                     std::size_t replicas, Rng& rng) {
  const Graph g = topo(setup.servers, rng);
  CostMatrix costs = CostMatrix::from_graph_shortest_paths(g);
  BalancedPlacementSpec pl;
  pl.servers = setup.servers;
  pl.objects = setup.objects;
  pl.replicas_per_object = replicas;
  ReplicationMatrix x_old = balanced_random_placement(pl, rng);
  BalancedPlacementSpec pl2 = pl;
  pl2.forbidden = &x_old;
  ReplicationMatrix x_new = balanced_random_placement(pl2, rng);
  ObjectCatalog objects = ObjectCatalog::uniform(setup.objects, setup.object_size);
  std::vector<Size> caps = minimum_capacities(objects, x_old, x_new);
  SystemModel model(ServerCatalog(std::move(caps)), std::move(objects),
                    std::move(costs), setup.dummy_factor);
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtsp::bench;
  FigureOptions opt = parse_figure_options(argc, argv);

  const std::vector<std::pair<std::string, TopologyFactory>> topologies = {
      {"BA tree (paper)",
       [](std::size_t n, Rng& rng) { return barabasi_albert_tree(n, {1, 10}, rng); }},
      {"uniform tree",
       [](std::size_t n, Rng& rng) { return uniform_random_tree(n, {1, 10}, rng); }},
      {"Waxman",
       [](std::size_t n, Rng& rng) {
         return waxman_connected(n, {}, {1, 10}, rng);
       }},
      {"Erdos-Renyi p=0.1",
       [](std::size_t n, Rng& rng) {
         return erdos_renyi_connected(n, 0.1, {1, 10}, rng);
       }},
      {"ring", [](std::size_t n, Rng&) { return ring_graph(n, 5); }},
  };

  std::vector<SweepPoint> points;
  for (const auto& [name, factory] : topologies) {
    const PaperSetup setup = opt.setup;
    const TopologyFactory topo = factory;
    points.push_back({name, [setup, topo](Rng& rng) {
                        return instance_on(topo, setup, 2, rng);
                      }});
  }
  run_figure("Ablation", "topology sensitivity (r=2, equal sizes)", points, opt,
             {"GOLCF", "GOLCF+H1+H2", "GOLCF+H1+H2+OP1"}, Metric::DummyTransfers,
             "topology");
  return 0;
}
