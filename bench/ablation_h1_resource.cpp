// Ablation (beyond the paper): two design choices around H1.
//
//  1. Re-sourcing the restored transfer: from the deleting server (the
//     paper's choice) vs from the cheapest replicator at the insertion
//     point.
//  2. The paper's claim that "combinations of H1+H2 with RDF and GSDF
//     resulted in similar trends" — we print all four builders under H1+H2.
#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/validator.hpp"
#include "heuristics/h1.hpp"
#include "heuristics/h2.hpp"
#include "heuristics/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  using namespace rtsp::bench;
  FigureOptions opt = parse_figure_options(argc, argv);

  // Part 1: re-source policy, measured on GOLCF schedules at r = 1..3.
  std::cout << "=== Ablation: H1 re-source policy (paper: deleter) ===\n\n";
  {
    TextTable table;
    table.header({"replicas/object", "dummies deleter", "dummies nearest",
                  "cost deleter", "cost nearest"});
    for (std::size_t r = 1; r <= 3; ++r) {
      StatAccumulator d_del, d_near, c_del, c_near;
      for (std::size_t trial = 0; trial < opt.sweep.trials; ++trial) {
        Rng rng = Rng::for_trial(opt.sweep.base_seed, mix64(r, trial));
        const Instance inst = make_equal_size_instance(opt.setup, r, rng);
        Rng b1(mix64(trial, 1));
        const Schedule base = make_pipeline("GOLCF").run(inst.model, inst.x_old,
                                                         inst.x_new, b1);
        H1Options paper_opts;  // resource_nearest = false
        H1Options nearest_opts;
        nearest_opts.resource_nearest = true;
        Rng unused(0);
        const Schedule h_paper = H1Improver(paper_opts).improve(
            inst.model, inst.x_old, inst.x_new, base, unused);
        const Schedule h_near = H1Improver(nearest_opts).improve(
            inst.model, inst.x_old, inst.x_new, base, unused);
        d_del.add(static_cast<double>(h_paper.dummy_transfer_count()));
        d_near.add(static_cast<double>(h_near.dummy_transfer_count()));
        c_del.add(static_cast<double>(schedule_cost(inst.model, h_paper)));
        c_near.add(static_cast<double>(schedule_cost(inst.model, h_near)));
      }
      table.add_row({std::to_string(r), format_mean_err(d_del.mean(), d_del.stderr_mean()),
                     format_mean_err(d_near.mean(), d_near.stderr_mean()),
                     format_mean_err(c_del.mean(), c_del.stderr_mean()),
                     format_mean_err(c_near.mean(), c_near.stderr_mean())});
    }
    table.print(std::cout);
  }

  // Part 2: every builder under H1+H2 (the paper's "similar trends" claim).
  std::cout << "\n=== Ablation: builders under H1+H2 (dummy transfers) ===\n\n";
  const auto points = replicas_sweep(
      opt.setup, [](const PaperSetup& s, std::size_t r, Rng& rng) {
        return make_equal_size_instance(s, r, rng);
      });
  opt.sweep.algorithms = {"AR+H1+H2", "GOLCF+H1+H2", "RDF+H1+H2", "GSDF+H1+H2"};
  const SweepResult result = run_sweep(points, opt.sweep);
  print_series(std::cout, result, Metric::DummyTransfers, "replicas/object");
  if (!opt.csv_path.empty()) maybe_dump_csv(opt.csv_path, result, "replicas/object");
  return 0;
}
