// Extension baseline: simulated annealing (SA) vs the paper's deterministic
// rewrites, on small instances where SA's budget is meaningful. Answers
// "how much does OP1's targeted reordering buy over generic local search?"
#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "heuristics/registry.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  const CliOptions cli(argc, argv);
  const std::size_t trials =
      static_cast<std::size_t>(cli.get_int("trials", "RTSP_TRIALS", 5));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", "RTSP_SEED", 11));

  std::cout << "=== Baseline: simulated annealing vs deterministic rewrites"
            << " (12 servers, 60 objects, r<=2, " << trials << " trials) ===\n\n";

  const std::vector<std::string> algos = {"GOLCF", "GOLCF+SA", "GOLCF+OP1",
                                          "GOLCF+H1+H2+OP1", "GOLCF+H1+H2+OP1+SA"};
  std::vector<StatAccumulator> cost(algos.size());
  std::vector<StatAccumulator> millis(algos.size());
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng = Rng::for_trial(seed, trial);
    RandomInstanceSpec spec;
    spec.servers = 12;
    spec.objects = 60;
    spec.max_replicas = 2;
    const Instance inst = random_instance(spec, rng);
    for (std::size_t a = 0; a < algos.size(); ++a) {
      Rng arng = Rng::for_trial(seed ^ 0x77, mix64(trial, a));
      Timer timer;
      const Schedule h =
          make_pipeline(algos[a]).run(inst.model, inst.x_old, inst.x_new, arng);
      millis[a].add(timer.millis());
      cost[a].add(static_cast<double>(schedule_cost(inst.model, h)));
    }
  }

  TextTable table;
  table.header({"algorithm", "cost", "ms"});
  for (std::size_t a = 0; a < algos.size(); ++a) {
    table.add_row({algos[a], format_mean_err(cost[a].mean(), cost[a].stderr_mean()),
                   format_mean_err(millis[a].mean(), millis[a].stderr_mean())});
  }
  table.print(std::cout);
  return 0;
}
