// Fig. 8 — number of dummy transfers as more servers acquire one extra
// object slot of capacity (equal sizes, 2 replicas per object).
//
// Paper's observations to reproduce: H1+H2 exploits the slack (falling
// curve) while plain GOLCF stays nearly flat.
#include "bench_common.hpp"

int main(int argc, char** argv) { return rtsp::bench::figure_main(8, argc, argv); }
