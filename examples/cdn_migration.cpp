// CDN content migration with parallel execution analysis.
//
// A CDN re-shuffles its object replicas overnight (the paper's Sec. 5.1
// workload). Beyond the sequential implementation cost, we ask the
// future-work question of Sec. 2.2: how long does the transition take if
// servers transfer in parallel? The dependency DAG + makespan simulator
// answers it for each planner, and the transfer graph (Fig. 1b) is exported
// as Graphviz DOT for inspection.
//
//   ./examples/cdn_migration [--servers M] [--objects N] [--replicas R]
//                            [--dot PATH] [--seed S]
#include <fstream>
#include <iostream>

#include "rtsp.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  const CliOptions cli(argc, argv);
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", "RTSP_SEED", 8)));
  PaperSetup setup;
  setup.servers = static_cast<std::size_t>(cli.get_int("servers", "", 20));
  setup.objects = static_cast<std::size_t>(cli.get_int("objects", "", 200));
  const std::size_t replicas =
      static_cast<std::size_t>(cli.get_int("replicas", "", 2));

  const Instance inst = make_equal_size_instance(setup, replicas, rng);
  std::cout << "CDN: " << setup.servers << " edge servers, " << setup.objects
            << " objects x " << replicas << " replicas, zero-overlap migration\n";

  const TransferGraph tg(inst.model, inst.x_old, inst.x_new);
  std::cout << "transfer graph: " << tg.arcs().size() << " arcs, "
            << (tg.has_cycle() ? "cyclic" : "acyclic")
            << (tg.deadlock_risk(inst.x_old) ? " (deadlock risk: tight cycle)"
                                             : "")
            << "\n\n";

  const std::string dot_path = cli.get_string("dot", "", "");
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << transfer_graph_to_dot(tg);
    std::cout << "transfer graph DOT written to " << dot_path << "\n\n";
  }

  TextTable table;
  table.header({"planner", "cost", "dummies", "makespan (1 port)",
                "makespan (4 ports)", "speedup@4", "critical path"});
  for (const std::string spec :
       {"RDF", "GSDF", "GOLCF", "GOLCF+H1+H2", "GOLCF+H1+H2+OP1"}) {
    Rng arng(4242);
    const Schedule h =
        make_pipeline(spec).run(inst.model, inst.x_old, inst.x_new, arng);
    const auto verdict = Validator::validate(inst.model, inst.x_old, inst.x_new, h);
    if (!verdict.valid) {
      std::cerr << spec << ": " << verdict.to_string() << '\n';
      return 1;
    }
    const auto one = simulate_makespan(inst.model, inst.x_old, h, {1.0, 1});
    const auto four = simulate_makespan(inst.model, inst.x_old, h, {1.0, 4});
    const DependencyGraph dag(h);
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx", four.speedup);
    table.add_row({spec, std::to_string(schedule_cost(inst.model, h)),
                   std::to_string(h.dummy_transfer_count()),
                   std::to_string(static_cast<long long>(one.makespan)),
                   std::to_string(static_cast<long long>(four.makespan)), speedup,
                   std::to_string(dag.critical_path_length())});
  }
  table.print(std::cout);
  std::cout << "\nmakespan model: transfer time = size x link cost / bandwidth;"
            << " ports bound concurrent transfers per server\n";
  return 0;
}
