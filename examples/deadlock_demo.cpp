// Walkthrough of the paper's two worked examples.
//
// Part 1 (Fig. 1): the rotation instance whose transfer graph is a circle —
// no schedule exists without the dummy server; the exact solver shows the
// cheapest way out.
//
// Part 2 (Fig. 3): the 4-server network of Sec. 4.1; we replay the RDF
// schedule from the paper, then watch H1 move its two dummy transfers back
// into validity exactly as the text describes.
//
//   ./examples/deadlock_demo
#include <iostream>

#include "rtsp.hpp"

namespace {

using namespace rtsp;

Instance fig1_instance() {
  SystemModel model(ServerCatalog::uniform(4, 1), ObjectCatalog::uniform(4, 1),
                    CostMatrix(4, 1));
  ReplicationMatrix x_old(4, 4);
  ReplicationMatrix x_new(4, 4);
  for (ServerId i = 0; i < 4; ++i) x_old.set(i, i);
  for (ServerId i = 0; i < 4; ++i) x_new.set(i, (i + 3) % 4);
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

Instance fig3_instance() {
  SystemModel model(ServerCatalog::uniform(4, 2), ObjectCatalog::uniform(4, 1),
                    CostMatrix::from_rows({{0, 1, 1, 2},
                                           {1, 0, 2, 3},
                                           {1, 2, 0, 1},
                                           {2, 3, 1, 0}}));
  ReplicationMatrix x_old = ReplicationMatrix::from_pairs(
      4, 4, {{0, 0}, {0, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {3, 0}, {3, 1}});
  ReplicationMatrix x_new = ReplicationMatrix::from_pairs(
      4, 4, {{0, 1}, {0, 3}, {1, 0}, {1, 1}, {2, 2}, {2, 3}, {3, 2}, {3, 3}});
  return Instance{std::move(model), std::move(x_old), std::move(x_new)};
}

}  // namespace

int main() {
  // ---- Part 1: Fig. 1 ----
  std::cout << "== Fig. 1: the infeasible rotation ==\n";
  const Instance fig1 = fig1_instance();
  const TransferGraph tg(fig1.model, fig1.x_old, fig1.x_new);
  std::cout << "transfer graph arcs:\n";
  for (const auto& arc : tg.arcs()) {
    std::cout << "  S" << arc.from << " -> S" << arc.to << "  (O" << arc.object
              << ")\n";
  }
  std::cout << "cyclic: " << (tg.has_cycle() ? "yes" : "no")
            << ", deadlock risk: " << (tg.deadlock_risk(fig1.x_old) ? "yes" : "no")
            << '\n';

  const BnbResult opt = solve_exact(fig1);
  std::cout << "optimal schedule (cost " << opt.cost << ", "
            << opt.schedule.dummy_transfer_count() << " dummy transfer(s)):\n"
            << opt.schedule.to_string() << '\n';

  // ---- Part 2: Fig. 3 ----
  std::cout << "== Fig. 3: H1 restoring RDF's dummy transfers ==\n";
  const Instance fig3 = fig3_instance();
  const Schedule rdf_schedule({
      Action::remove(0, 0), Action::remove(3, 1), Action::remove(2, 1),
      Action::remove(3, 0), Action::remove(1, 3), Action::remove(1, 2),
      Action::transfer(0, 3, kDummyServer), Action::transfer(3, 2, 2),
      Action::transfer(2, 3, 0), Action::transfer(1, 1, 0),
      Action::transfer(1, 0, kDummyServer), Action::transfer(3, 3, 2),
  });
  std::cout << "paper's RDF schedule (" << rdf_schedule.dummy_transfer_count()
            << " dummy transfers, cost "
            << schedule_cost(fig3.model, rdf_schedule) << "):\n"
            << rdf_schedule.to_string() << '\n';

  Rng rng(0);
  const Schedule fixed = H1Improver().improve(fig3.model, fig3.x_old, fig3.x_new,
                                              rdf_schedule, rng);
  std::cout << "after H1 (" << fixed.dummy_transfer_count()
            << " dummy transfers, cost " << schedule_cost(fig3.model, fixed)
            << "):\n"
            << fixed.to_string() << '\n';

  const auto verdict = Validator::validate(fig3.model, fig3.x_old, fig3.x_new, fixed);
  std::cout << "validator: " << verdict.to_string() << '\n';
  return verdict.valid ? 0 : 1;
}
