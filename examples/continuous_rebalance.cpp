// Continuous rebalancing over a popularity-drift trace.
//
// The paper's Sec. 2.1 loop, run for a whole week: each day popularity
// churns, some of the catalogue is replaced by new releases, a greedy
// placement recomputes X_new, and RTSP implements the transition. New
// objects have no replicas anywhere, so their first copies are genuine
// archive (dummy) fetches — the case Sec. 3.3 argues the dummy server
// models. We track, day by day, how the winner chain compares to plain
// GOLCF and how many dummy fetches are forced vs avoidable.
//
//   ./examples/continuous_rebalance [--days N] [--seed S]
#include <iostream>

#include "rtsp.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "workload/drift.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  const CliOptions cli(argc, argv);
  DriftTraceSpec spec;
  spec.days = static_cast<std::size_t>(cli.get_int("days", "", 6));
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", "RTSP_SEED", 21)));

  const DriftTrace trace = generate_drift_trace(spec, rng);
  std::cout << "drift trace: " << spec.objects << " objects on " << spec.servers
            << " servers, " << spec.days << " days, " << spec.churn * 100
            << "% churn, " << spec.arrival_rate * 100 << "% arrivals per day\n\n";

  TextTable table;
  table.header({"day", "new objects", "GOLCF cost", "winner cost", "saving",
                "winner dummies", "forced (arrivals)"});
  Cost total_golcf = 0;
  Cost total_winner = 0;
  for (std::size_t day = 0; day < trace.transitions.size(); ++day) {
    const DriftTransition& tr = trace.transitions[day];
    // Forced dummy fetches: one per replica of a brand-new object.
    std::size_t forced = 0;
    const PlacementDelta delta(tr.x_old, tr.x_new);
    for (const Replica& r : delta.outstanding()) {
      if (tr.x_old.replica_count(r.object) == 0 &&
          tr.x_new.replicators_of(r.object).front() == r.server) {
        // count each new object once (its first copy must be archival)
        ++forced;
      }
    }
    Rng r1(mix64(100, day));
    const Schedule golcf = make_pipeline("GOLCF").run(trace.model, tr.x_old,
                                                      tr.x_new, r1);
    Rng r2(mix64(100, day));
    const Schedule winner = make_pipeline("GOLCF+H1+H2+OP1")
                                .run(trace.model, tr.x_old, tr.x_new, r2);
    const auto verdict =
        Validator::validate(trace.model, tr.x_old, tr.x_new, winner);
    if (!verdict.valid) {
      std::cerr << "day " << day << ": " << verdict.to_string() << '\n';
      return 1;
    }
    const Cost gc = schedule_cost(trace.model, golcf);
    const Cost wc = schedule_cost(trace.model, winner);
    total_golcf += gc;
    total_winner += wc;
    char saving[32];
    std::snprintf(saving, sizeof saving, "%.1f%%",
                  gc > 0 ? 100.0 * static_cast<double>(gc - wc) /
                               static_cast<double>(gc)
                         : 0.0);
    table.add_row({std::to_string(day + 1), std::to_string(tr.new_objects),
                   std::to_string(gc), std::to_string(wc), saving,
                   std::to_string(winner.dummy_transfer_count()),
                   std::to_string(forced)});
  }
  table.print(std::cout);
  std::cout << "\nweek total: GOLCF " << total_golcf << " vs winner "
            << total_winner << " ("
            << (total_golcf > 0
                    ? 100.0 * static_cast<double>(total_golcf - total_winner) /
                          static_cast<double>(total_golcf)
                    : 0.0)
            << "% saved)\n";
  std::cout << "(dummy fetches at or above the 'forced' column are the "
               "archive reads new releases require)\n";
  return 0;
}
