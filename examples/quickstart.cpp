// Quickstart: build a small RTSP instance, run the paper's winner pipeline
// (GOLCF+H1+H2+OP1), inspect and validate the schedule.
//
//   ./examples/quickstart [--seed N]
#include <iostream>

#include "rtsp.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  const CliOptions cli(argc, argv);
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", "RTSP_SEED", 1)));

  // 1. A 10-server tree network with link costs 1..10; costs between
  //    servers are shortest-path sums, as in the paper's Sec. 5.1.
  const Graph network = barabasi_albert_tree(10, {1, 10}, rng);
  CostMatrix costs = CostMatrix::from_graph_shortest_paths(network);

  // 2. 24 unit-size objects; each server stores up to 6.
  SystemModel model(ServerCatalog::uniform(10, 6), ObjectCatalog::uniform(24, 1),
                    std::move(costs), /*dummy_factor=*/1.0);

  // 3. Old and new placements: 2 replicas per object, balanced, with zero
  //    overlap (the hardest, deadlock-prone regime of the paper).
  BalancedPlacementSpec pl;
  pl.servers = 10;
  pl.objects = 24;
  pl.replicas_per_object = 2;
  const ReplicationMatrix x_old = balanced_random_placement(pl, rng);
  BalancedPlacementSpec pl2 = pl;
  pl2.forbidden = &x_old;
  const ReplicationMatrix x_new = balanced_random_placement(pl2, rng);

  // 4. Plan the transition with the paper's winner combination.
  const Pipeline algo = make_pipeline("GOLCF+H1+H2+OP1");
  const Schedule schedule = algo.run(model, x_old, x_new, rng);

  // 5. Inspect the result.
  std::cout << "schedule (" << schedule.size() << " actions):\n"
            << schedule.to_string() << '\n';
  std::cout << "implementation cost: " << schedule_cost(model, schedule) << '\n';
  std::cout << "dummy transfers:     " << schedule.dummy_transfer_count() << '\n';
  std::cout << "cost lower bound:    " << cost_lower_bound(model, x_old, x_new)
            << '\n';
  std::cout << "worst-case cost:     " << worst_case_cost(model, x_old, x_new)
            << '\n';

  const auto verdict = Validator::validate(model, x_old, x_new, schedule);
  std::cout << "validator: " << verdict.to_string() << '\n';
  return verdict.valid ? 0 : 1;
}
