// Distributed video server rebalancing — the paper's Sec. 2.1 motivation.
//
// A catalogue of movies is replicated across servers according to Zipf
// popularity. Popularity drifts (yesterday's hits cool down, new releases
// arrive), a greedy placement recomputes X_new, and RTSP schedules the
// nightly transition. We compare the naive worst-case plan, plain GOLCF and
// the paper's winner chain.
//
//   ./examples/video_rebalance [--movies N] [--servers M] [--seed S]
#include <iostream>

#include "rtsp.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace rtsp;
  const CliOptions cli(argc, argv);
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", "RTSP_SEED", 3)));
  const std::size_t movies =
      static_cast<std::size_t>(cli.get_int("movies", "", 60));
  const std::size_t servers =
      static_cast<std::size_t>(cli.get_int("servers", "", 12));

  // Movie sizes 40..60 units; each server stores ~ 1.6x a fair share.
  std::vector<Size> sizes(movies);
  for (Size& s : sizes) s = rng.uniform_int(40, 60);
  ObjectCatalog catalogue(std::move(sizes));
  const Size capacity =
      catalogue.total_size() * 16 / (10 * static_cast<Size>(servers));

  Rng topo_rng(17);
  const Graph network = barabasi_albert_tree(servers, {1, 10}, topo_rng);
  SystemModel model(ServerCatalog::uniform(servers, capacity), catalogue,
                    CostMatrix::from_graph_shortest_paths(network));

  // Day 1: Zipf(1.0) popularity -> greedy placement.
  const DemandMatrix day1 =
      uniform_demand(servers, random_zipf_rates(movies, 1.0, 1000.0, rng));
  const ReplicationMatrix x_old = greedy_placement(model, day1, {}, rng);

  // Day 2: popularity drifts — a fresh Zipf ranking (new hits, cooled hits).
  const DemandMatrix day2 =
      uniform_demand(servers, random_zipf_rates(movies, 1.0, 1000.0, rng));
  const ReplicationMatrix x_new = greedy_placement(model, day2, {}, rng);

  std::cout << "video catalogue: " << movies << " movies on " << servers
            << " servers\n";
  std::cout << "replicas: " << x_old.total_replicas() << " -> "
            << x_new.total_replicas() << ", overlap "
            << x_old.overlap(x_new) << "\n";
  std::cout << "access cost day1 placement vs day2 demand: "
            << access_cost(model, x_old, day2) << '\n';
  std::cout << "access cost day2 placement vs day2 demand: "
            << access_cost(model, x_new, day2) << "\n\n";

  // Schedule the nightly transition three ways.
  TextTable table;
  table.header({"planner", "cost", "dummy transfers", "actions"});
  {
    const Schedule naive = worst_case_schedule(model, x_old, x_new);
    table.add_row({"delete-all + dummy fetches",
                   std::to_string(schedule_cost(model, naive)),
                   std::to_string(naive.dummy_transfer_count()),
                   std::to_string(naive.size())});
  }
  for (const std::string spec : {"GOLCF", "GOLCF+H1+H2+OP1"}) {
    Rng arng(99);
    const Schedule h = make_pipeline(spec).run(model, x_old, x_new, arng);
    const auto verdict = Validator::validate(model, x_old, x_new, h);
    if (!verdict.valid) {
      std::cerr << spec << " produced an invalid schedule: "
                << verdict.to_string() << '\n';
      return 1;
    }
    table.add_row({spec, std::to_string(schedule_cost(model, h)),
                   std::to_string(h.dummy_transfer_count()),
                   std::to_string(h.size())});
  }
  table.print(std::cout);
  std::cout << "\n(lower bound on any schedule: "
            << cost_lower_bound(model, x_old, x_new) << ")\n";
  return 0;
}
