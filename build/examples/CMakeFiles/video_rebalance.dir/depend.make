# Empty dependencies file for video_rebalance.
# This may be replaced when dependencies are built.
