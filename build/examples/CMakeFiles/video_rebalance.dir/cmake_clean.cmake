file(REMOVE_RECURSE
  "CMakeFiles/video_rebalance.dir/video_rebalance.cpp.o"
  "CMakeFiles/video_rebalance.dir/video_rebalance.cpp.o.d"
  "video_rebalance"
  "video_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
