file(REMOVE_RECURSE
  "CMakeFiles/continuous_rebalance.dir/continuous_rebalance.cpp.o"
  "CMakeFiles/continuous_rebalance.dir/continuous_rebalance.cpp.o.d"
  "continuous_rebalance"
  "continuous_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
