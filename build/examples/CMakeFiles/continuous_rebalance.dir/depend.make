# Empty dependencies file for continuous_rebalance.
# This may be replaced when dependencies are built.
