# Empty dependencies file for rtsp_exact_tests.
# This may be replaced when dependencies are built.
