file(REMOVE_RECURSE
  "CMakeFiles/rtsp_exact_tests.dir/exact_bnb_test.cpp.o"
  "CMakeFiles/rtsp_exact_tests.dir/exact_bnb_test.cpp.o.d"
  "CMakeFiles/rtsp_exact_tests.dir/exact_knapsack_test.cpp.o"
  "CMakeFiles/rtsp_exact_tests.dir/exact_knapsack_test.cpp.o.d"
  "CMakeFiles/rtsp_exact_tests.dir/exact_reduction_test.cpp.o"
  "CMakeFiles/rtsp_exact_tests.dir/exact_reduction_test.cpp.o.d"
  "CMakeFiles/rtsp_exact_tests.dir/exact_ucs_test.cpp.o"
  "CMakeFiles/rtsp_exact_tests.dir/exact_ucs_test.cpp.o.d"
  "rtsp_exact_tests"
  "rtsp_exact_tests.pdb"
  "rtsp_exact_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_exact_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
