# Empty compiler generated dependencies file for rtsp_core_tests.
# This may be replaced when dependencies are built.
