
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_action_schedule_test.cpp" "tests/CMakeFiles/rtsp_core_tests.dir/core_action_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_core_tests.dir/core_action_schedule_test.cpp.o.d"
  "/root/repo/tests/core_cost_delta_test.cpp" "tests/CMakeFiles/rtsp_core_tests.dir/core_cost_delta_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_core_tests.dir/core_cost_delta_test.cpp.o.d"
  "/root/repo/tests/core_feasibility_test.cpp" "tests/CMakeFiles/rtsp_core_tests.dir/core_feasibility_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_core_tests.dir/core_feasibility_test.cpp.o.d"
  "/root/repo/tests/core_replication_test.cpp" "tests/CMakeFiles/rtsp_core_tests.dir/core_replication_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_core_tests.dir/core_replication_test.cpp.o.d"
  "/root/repo/tests/core_schedule_stats_test.cpp" "tests/CMakeFiles/rtsp_core_tests.dir/core_schedule_stats_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_core_tests.dir/core_schedule_stats_test.cpp.o.d"
  "/root/repo/tests/core_state_test.cpp" "tests/CMakeFiles/rtsp_core_tests.dir/core_state_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_core_tests.dir/core_state_test.cpp.o.d"
  "/root/repo/tests/core_system_test.cpp" "tests/CMakeFiles/rtsp_core_tests.dir/core_system_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_core_tests.dir/core_system_test.cpp.o.d"
  "/root/repo/tests/core_transfer_graph_test.cpp" "tests/CMakeFiles/rtsp_core_tests.dir/core_transfer_graph_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_core_tests.dir/core_transfer_graph_test.cpp.o.d"
  "/root/repo/tests/core_validator_test.cpp" "tests/CMakeFiles/rtsp_core_tests.dir/core_validator_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_core_tests.dir/core_validator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsp_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_extension.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
