file(REMOVE_RECURSE
  "CMakeFiles/rtsp_core_tests.dir/core_action_schedule_test.cpp.o"
  "CMakeFiles/rtsp_core_tests.dir/core_action_schedule_test.cpp.o.d"
  "CMakeFiles/rtsp_core_tests.dir/core_cost_delta_test.cpp.o"
  "CMakeFiles/rtsp_core_tests.dir/core_cost_delta_test.cpp.o.d"
  "CMakeFiles/rtsp_core_tests.dir/core_feasibility_test.cpp.o"
  "CMakeFiles/rtsp_core_tests.dir/core_feasibility_test.cpp.o.d"
  "CMakeFiles/rtsp_core_tests.dir/core_replication_test.cpp.o"
  "CMakeFiles/rtsp_core_tests.dir/core_replication_test.cpp.o.d"
  "CMakeFiles/rtsp_core_tests.dir/core_schedule_stats_test.cpp.o"
  "CMakeFiles/rtsp_core_tests.dir/core_schedule_stats_test.cpp.o.d"
  "CMakeFiles/rtsp_core_tests.dir/core_state_test.cpp.o"
  "CMakeFiles/rtsp_core_tests.dir/core_state_test.cpp.o.d"
  "CMakeFiles/rtsp_core_tests.dir/core_system_test.cpp.o"
  "CMakeFiles/rtsp_core_tests.dir/core_system_test.cpp.o.d"
  "CMakeFiles/rtsp_core_tests.dir/core_transfer_graph_test.cpp.o"
  "CMakeFiles/rtsp_core_tests.dir/core_transfer_graph_test.cpp.o.d"
  "CMakeFiles/rtsp_core_tests.dir/core_validator_test.cpp.o"
  "CMakeFiles/rtsp_core_tests.dir/core_validator_test.cpp.o.d"
  "rtsp_core_tests"
  "rtsp_core_tests.pdb"
  "rtsp_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
