file(REMOVE_RECURSE
  "CMakeFiles/rtsp_cli_tests.dir/cli_commands_test.cpp.o"
  "CMakeFiles/rtsp_cli_tests.dir/cli_commands_test.cpp.o.d"
  "rtsp_cli_tests"
  "rtsp_cli_tests.pdb"
  "rtsp_cli_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_cli_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
