# Empty dependencies file for rtsp_cli_tests.
# This may be replaced when dependencies are built.
