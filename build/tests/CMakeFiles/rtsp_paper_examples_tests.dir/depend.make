# Empty dependencies file for rtsp_paper_examples_tests.
# This may be replaced when dependencies are built.
