file(REMOVE_RECURSE
  "CMakeFiles/rtsp_paper_examples_tests.dir/paper_fig1_test.cpp.o"
  "CMakeFiles/rtsp_paper_examples_tests.dir/paper_fig1_test.cpp.o.d"
  "CMakeFiles/rtsp_paper_examples_tests.dir/paper_fig3_test.cpp.o"
  "CMakeFiles/rtsp_paper_examples_tests.dir/paper_fig3_test.cpp.o.d"
  "rtsp_paper_examples_tests"
  "rtsp_paper_examples_tests.pdb"
  "rtsp_paper_examples_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_paper_examples_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
