file(REMOVE_RECURSE
  "CMakeFiles/rtsp_experiment_tests.dir/experiment_runner_test.cpp.o"
  "CMakeFiles/rtsp_experiment_tests.dir/experiment_runner_test.cpp.o.d"
  "rtsp_experiment_tests"
  "rtsp_experiment_tests.pdb"
  "rtsp_experiment_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_experiment_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
