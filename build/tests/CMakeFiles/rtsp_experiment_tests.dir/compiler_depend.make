# Empty compiler generated dependencies file for rtsp_experiment_tests.
# This may be replaced when dependencies are built.
