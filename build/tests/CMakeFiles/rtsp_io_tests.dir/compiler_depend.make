# Empty compiler generated dependencies file for rtsp_io_tests.
# This may be replaced when dependencies are built.
