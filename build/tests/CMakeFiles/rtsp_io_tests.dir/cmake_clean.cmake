file(REMOVE_RECURSE
  "CMakeFiles/rtsp_io_tests.dir/io_dot_test.cpp.o"
  "CMakeFiles/rtsp_io_tests.dir/io_dot_test.cpp.o.d"
  "CMakeFiles/rtsp_io_tests.dir/io_instance_test.cpp.o"
  "CMakeFiles/rtsp_io_tests.dir/io_instance_test.cpp.o.d"
  "CMakeFiles/rtsp_io_tests.dir/io_json_test.cpp.o"
  "CMakeFiles/rtsp_io_tests.dir/io_json_test.cpp.o.d"
  "CMakeFiles/rtsp_io_tests.dir/io_schedule_test.cpp.o"
  "CMakeFiles/rtsp_io_tests.dir/io_schedule_test.cpp.o.d"
  "rtsp_io_tests"
  "rtsp_io_tests.pdb"
  "rtsp_io_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_io_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
