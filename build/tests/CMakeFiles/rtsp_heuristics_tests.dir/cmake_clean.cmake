file(REMOVE_RECURSE
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_builders_test.cpp.o"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_builders_test.cpp.o.d"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_extensions_test.cpp.o"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_extensions_test.cpp.o.d"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_h1_test.cpp.o"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_h1_test.cpp.o.d"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_h2_test.cpp.o"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_h2_test.cpp.o.d"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_op1_test.cpp.o"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_op1_test.cpp.o.d"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_pipeline_test.cpp.o"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_pipeline_test.cpp.o.d"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_surgery_test.cpp.o"
  "CMakeFiles/rtsp_heuristics_tests.dir/heuristics_surgery_test.cpp.o.d"
  "rtsp_heuristics_tests"
  "rtsp_heuristics_tests.pdb"
  "rtsp_heuristics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_heuristics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
