# Empty dependencies file for rtsp_heuristics_tests.
# This may be replaced when dependencies are built.
