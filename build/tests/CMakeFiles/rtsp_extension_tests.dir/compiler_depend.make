# Empty compiler generated dependencies file for rtsp_extension_tests.
# This may be replaced when dependencies are built.
