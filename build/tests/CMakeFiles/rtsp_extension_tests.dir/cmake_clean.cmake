file(REMOVE_RECURSE
  "CMakeFiles/rtsp_extension_tests.dir/extension_deadline_test.cpp.o"
  "CMakeFiles/rtsp_extension_tests.dir/extension_deadline_test.cpp.o.d"
  "CMakeFiles/rtsp_extension_tests.dir/extension_dependency_test.cpp.o"
  "CMakeFiles/rtsp_extension_tests.dir/extension_dependency_test.cpp.o.d"
  "CMakeFiles/rtsp_extension_tests.dir/extension_makespan_test.cpp.o"
  "CMakeFiles/rtsp_extension_tests.dir/extension_makespan_test.cpp.o.d"
  "CMakeFiles/rtsp_extension_tests.dir/extension_phases_test.cpp.o"
  "CMakeFiles/rtsp_extension_tests.dir/extension_phases_test.cpp.o.d"
  "rtsp_extension_tests"
  "rtsp_extension_tests.pdb"
  "rtsp_extension_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_extension_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
