# Empty dependencies file for rtsp_property_tests.
# This may be replaced when dependencies are built.
