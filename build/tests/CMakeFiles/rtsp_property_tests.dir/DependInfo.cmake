
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/differential_test.cpp" "tests/CMakeFiles/rtsp_property_tests.dir/differential_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_property_tests.dir/differential_test.cpp.o.d"
  "/root/repo/tests/property_suite_test.cpp" "tests/CMakeFiles/rtsp_property_tests.dir/property_suite_test.cpp.o" "gcc" "tests/CMakeFiles/rtsp_property_tests.dir/property_suite_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsp_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_extension.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
