file(REMOVE_RECURSE
  "CMakeFiles/rtsp_property_tests.dir/differential_test.cpp.o"
  "CMakeFiles/rtsp_property_tests.dir/differential_test.cpp.o.d"
  "CMakeFiles/rtsp_property_tests.dir/property_suite_test.cpp.o"
  "CMakeFiles/rtsp_property_tests.dir/property_suite_test.cpp.o.d"
  "rtsp_property_tests"
  "rtsp_property_tests.pdb"
  "rtsp_property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
