# Empty dependencies file for rtsp_support_tests.
# This may be replaced when dependencies are built.
