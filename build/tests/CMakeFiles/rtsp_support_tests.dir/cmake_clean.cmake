file(REMOVE_RECURSE
  "CMakeFiles/rtsp_support_tests.dir/support_cli_test.cpp.o"
  "CMakeFiles/rtsp_support_tests.dir/support_cli_test.cpp.o.d"
  "CMakeFiles/rtsp_support_tests.dir/support_csv_test.cpp.o"
  "CMakeFiles/rtsp_support_tests.dir/support_csv_test.cpp.o.d"
  "CMakeFiles/rtsp_support_tests.dir/support_histogram_test.cpp.o"
  "CMakeFiles/rtsp_support_tests.dir/support_histogram_test.cpp.o.d"
  "CMakeFiles/rtsp_support_tests.dir/support_rng_test.cpp.o"
  "CMakeFiles/rtsp_support_tests.dir/support_rng_test.cpp.o.d"
  "CMakeFiles/rtsp_support_tests.dir/support_stats_test.cpp.o"
  "CMakeFiles/rtsp_support_tests.dir/support_stats_test.cpp.o.d"
  "CMakeFiles/rtsp_support_tests.dir/support_string_test.cpp.o"
  "CMakeFiles/rtsp_support_tests.dir/support_string_test.cpp.o.d"
  "CMakeFiles/rtsp_support_tests.dir/support_table_test.cpp.o"
  "CMakeFiles/rtsp_support_tests.dir/support_table_test.cpp.o.d"
  "CMakeFiles/rtsp_support_tests.dir/support_thread_pool_test.cpp.o"
  "CMakeFiles/rtsp_support_tests.dir/support_thread_pool_test.cpp.o.d"
  "rtsp_support_tests"
  "rtsp_support_tests.pdb"
  "rtsp_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
