# Empty compiler generated dependencies file for rtsp_reproduction_tests.
# This may be replaced when dependencies are built.
