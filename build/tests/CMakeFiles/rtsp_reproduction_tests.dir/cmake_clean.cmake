file(REMOVE_RECURSE
  "CMakeFiles/rtsp_reproduction_tests.dir/reproduction_test.cpp.o"
  "CMakeFiles/rtsp_reproduction_tests.dir/reproduction_test.cpp.o.d"
  "rtsp_reproduction_tests"
  "rtsp_reproduction_tests.pdb"
  "rtsp_reproduction_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_reproduction_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
