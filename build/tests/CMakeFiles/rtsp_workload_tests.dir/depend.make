# Empty dependencies file for rtsp_workload_tests.
# This may be replaced when dependencies are built.
