file(REMOVE_RECURSE
  "CMakeFiles/rtsp_workload_tests.dir/workload_balanced_test.cpp.o"
  "CMakeFiles/rtsp_workload_tests.dir/workload_balanced_test.cpp.o.d"
  "CMakeFiles/rtsp_workload_tests.dir/workload_drift_test.cpp.o"
  "CMakeFiles/rtsp_workload_tests.dir/workload_drift_test.cpp.o.d"
  "CMakeFiles/rtsp_workload_tests.dir/workload_paper_setup_test.cpp.o"
  "CMakeFiles/rtsp_workload_tests.dir/workload_paper_setup_test.cpp.o.d"
  "CMakeFiles/rtsp_workload_tests.dir/workload_scenario_test.cpp.o"
  "CMakeFiles/rtsp_workload_tests.dir/workload_scenario_test.cpp.o.d"
  "rtsp_workload_tests"
  "rtsp_workload_tests.pdb"
  "rtsp_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
