file(REMOVE_RECURSE
  "CMakeFiles/rtsp_topology_tests.dir/topology_cost_matrix_test.cpp.o"
  "CMakeFiles/rtsp_topology_tests.dir/topology_cost_matrix_test.cpp.o.d"
  "CMakeFiles/rtsp_topology_tests.dir/topology_generators_test.cpp.o"
  "CMakeFiles/rtsp_topology_tests.dir/topology_generators_test.cpp.o.d"
  "CMakeFiles/rtsp_topology_tests.dir/topology_graph_test.cpp.o"
  "CMakeFiles/rtsp_topology_tests.dir/topology_graph_test.cpp.o.d"
  "CMakeFiles/rtsp_topology_tests.dir/topology_shortest_paths_test.cpp.o"
  "CMakeFiles/rtsp_topology_tests.dir/topology_shortest_paths_test.cpp.o.d"
  "rtsp_topology_tests"
  "rtsp_topology_tests.pdb"
  "rtsp_topology_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_topology_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
