# Empty compiler generated dependencies file for rtsp_topology_tests.
# This may be replaced when dependencies are built.
