# Empty dependencies file for rtsp_placement_tests.
# This may be replaced when dependencies are built.
