file(REMOVE_RECURSE
  "CMakeFiles/rtsp_placement_tests.dir/placement_test.cpp.o"
  "CMakeFiles/rtsp_placement_tests.dir/placement_test.cpp.o.d"
  "rtsp_placement_tests"
  "rtsp_placement_tests.pdb"
  "rtsp_placement_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_placement_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
