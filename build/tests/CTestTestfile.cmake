# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rtsp_support_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_topology_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_core_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_heuristics_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_paper_examples_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_exact_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_workload_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_placement_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_experiment_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_reproduction_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_io_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_extension_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_cli_tests[1]_include.cmake")
include("/root/repo/build/tests/rtsp_property_tests[1]_include.cmake")
