# Empty compiler generated dependencies file for rtsp_experiments.
# This may be replaced when dependencies are built.
