file(REMOVE_RECURSE
  "CMakeFiles/rtsp_experiments.dir/rtsp_experiments.cpp.o"
  "CMakeFiles/rtsp_experiments.dir/rtsp_experiments.cpp.o.d"
  "rtsp_experiments"
  "rtsp_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
