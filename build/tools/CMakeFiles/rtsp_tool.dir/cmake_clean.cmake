file(REMOVE_RECURSE
  "CMakeFiles/rtsp_tool.dir/rtsp_cli.cpp.o"
  "CMakeFiles/rtsp_tool.dir/rtsp_cli.cpp.o.d"
  "rtsp"
  "rtsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
