# Empty compiler generated dependencies file for rtsp_tool.
# This may be replaced when dependencies are built.
