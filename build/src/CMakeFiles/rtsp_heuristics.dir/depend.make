# Empty dependencies file for rtsp_heuristics.
# This may be replaced when dependencies are built.
