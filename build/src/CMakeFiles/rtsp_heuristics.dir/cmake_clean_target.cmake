file(REMOVE_RECURSE
  "librtsp_heuristics.a"
)
