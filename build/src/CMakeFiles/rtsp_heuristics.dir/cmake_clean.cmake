file(REMOVE_RECURSE
  "CMakeFiles/rtsp_heuristics.dir/heuristics/annealing.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/annealing.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/ar.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/ar.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/builder_common.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/builder_common.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/fixpoint.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/fixpoint.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/golcf.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/golcf.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/gsdf.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/gsdf.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/h1.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/h1.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/h2.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/h2.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/op1.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/op1.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/pipeline.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/pipeline.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/rdf.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/rdf.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/registry.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/registry.cpp.o.d"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/surgery.cpp.o"
  "CMakeFiles/rtsp_heuristics.dir/heuristics/surgery.cpp.o.d"
  "librtsp_heuristics.a"
  "librtsp_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
