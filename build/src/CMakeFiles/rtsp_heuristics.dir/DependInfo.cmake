
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heuristics/annealing.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/annealing.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/annealing.cpp.o.d"
  "/root/repo/src/heuristics/ar.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/ar.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/ar.cpp.o.d"
  "/root/repo/src/heuristics/builder_common.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/builder_common.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/builder_common.cpp.o.d"
  "/root/repo/src/heuristics/fixpoint.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/fixpoint.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/fixpoint.cpp.o.d"
  "/root/repo/src/heuristics/golcf.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/golcf.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/golcf.cpp.o.d"
  "/root/repo/src/heuristics/gsdf.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/gsdf.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/gsdf.cpp.o.d"
  "/root/repo/src/heuristics/h1.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/h1.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/h1.cpp.o.d"
  "/root/repo/src/heuristics/h2.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/h2.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/h2.cpp.o.d"
  "/root/repo/src/heuristics/op1.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/op1.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/op1.cpp.o.d"
  "/root/repo/src/heuristics/pipeline.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/pipeline.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/pipeline.cpp.o.d"
  "/root/repo/src/heuristics/rdf.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/rdf.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/rdf.cpp.o.d"
  "/root/repo/src/heuristics/registry.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/registry.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/registry.cpp.o.d"
  "/root/repo/src/heuristics/surgery.cpp" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/surgery.cpp.o" "gcc" "src/CMakeFiles/rtsp_heuristics.dir/heuristics/surgery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
