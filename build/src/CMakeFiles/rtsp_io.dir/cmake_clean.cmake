file(REMOVE_RECURSE
  "CMakeFiles/rtsp_io.dir/io/dot_export.cpp.o"
  "CMakeFiles/rtsp_io.dir/io/dot_export.cpp.o.d"
  "CMakeFiles/rtsp_io.dir/io/instance_io.cpp.o"
  "CMakeFiles/rtsp_io.dir/io/instance_io.cpp.o.d"
  "CMakeFiles/rtsp_io.dir/io/json_export.cpp.o"
  "CMakeFiles/rtsp_io.dir/io/json_export.cpp.o.d"
  "CMakeFiles/rtsp_io.dir/io/schedule_io.cpp.o"
  "CMakeFiles/rtsp_io.dir/io/schedule_io.cpp.o.d"
  "librtsp_io.a"
  "librtsp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
