file(REMOVE_RECURSE
  "librtsp_io.a"
)
