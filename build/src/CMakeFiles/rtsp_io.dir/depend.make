# Empty dependencies file for rtsp_io.
# This may be replaced when dependencies are built.
