file(REMOVE_RECURSE
  "CMakeFiles/rtsp_experiment.dir/experiment/figures.cpp.o"
  "CMakeFiles/rtsp_experiment.dir/experiment/figures.cpp.o.d"
  "CMakeFiles/rtsp_experiment.dir/experiment/metrics.cpp.o"
  "CMakeFiles/rtsp_experiment.dir/experiment/metrics.cpp.o.d"
  "CMakeFiles/rtsp_experiment.dir/experiment/report.cpp.o"
  "CMakeFiles/rtsp_experiment.dir/experiment/report.cpp.o.d"
  "CMakeFiles/rtsp_experiment.dir/experiment/runner.cpp.o"
  "CMakeFiles/rtsp_experiment.dir/experiment/runner.cpp.o.d"
  "librtsp_experiment.a"
  "librtsp_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
