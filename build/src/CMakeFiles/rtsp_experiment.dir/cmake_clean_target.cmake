file(REMOVE_RECURSE
  "librtsp_experiment.a"
)
