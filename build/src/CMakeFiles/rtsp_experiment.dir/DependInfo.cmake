
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/experiment/figures.cpp" "src/CMakeFiles/rtsp_experiment.dir/experiment/figures.cpp.o" "gcc" "src/CMakeFiles/rtsp_experiment.dir/experiment/figures.cpp.o.d"
  "/root/repo/src/experiment/metrics.cpp" "src/CMakeFiles/rtsp_experiment.dir/experiment/metrics.cpp.o" "gcc" "src/CMakeFiles/rtsp_experiment.dir/experiment/metrics.cpp.o.d"
  "/root/repo/src/experiment/report.cpp" "src/CMakeFiles/rtsp_experiment.dir/experiment/report.cpp.o" "gcc" "src/CMakeFiles/rtsp_experiment.dir/experiment/report.cpp.o.d"
  "/root/repo/src/experiment/runner.cpp" "src/CMakeFiles/rtsp_experiment.dir/experiment/runner.cpp.o" "gcc" "src/CMakeFiles/rtsp_experiment.dir/experiment/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsp_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
