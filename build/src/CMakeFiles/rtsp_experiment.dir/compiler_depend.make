# Empty compiler generated dependencies file for rtsp_experiment.
# This may be replaced when dependencies are built.
