# Empty dependencies file for rtsp_placement.
# This may be replaced when dependencies are built.
