file(REMOVE_RECURSE
  "CMakeFiles/rtsp_placement.dir/placement/access_cost.cpp.o"
  "CMakeFiles/rtsp_placement.dir/placement/access_cost.cpp.o.d"
  "CMakeFiles/rtsp_placement.dir/placement/greedy_place.cpp.o"
  "CMakeFiles/rtsp_placement.dir/placement/greedy_place.cpp.o.d"
  "CMakeFiles/rtsp_placement.dir/placement/zipf.cpp.o"
  "CMakeFiles/rtsp_placement.dir/placement/zipf.cpp.o.d"
  "librtsp_placement.a"
  "librtsp_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
