
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/access_cost.cpp" "src/CMakeFiles/rtsp_placement.dir/placement/access_cost.cpp.o" "gcc" "src/CMakeFiles/rtsp_placement.dir/placement/access_cost.cpp.o.d"
  "/root/repo/src/placement/greedy_place.cpp" "src/CMakeFiles/rtsp_placement.dir/placement/greedy_place.cpp.o" "gcc" "src/CMakeFiles/rtsp_placement.dir/placement/greedy_place.cpp.o.d"
  "/root/repo/src/placement/zipf.cpp" "src/CMakeFiles/rtsp_placement.dir/placement/zipf.cpp.o" "gcc" "src/CMakeFiles/rtsp_placement.dir/placement/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
