file(REMOVE_RECURSE
  "librtsp_placement.a"
)
