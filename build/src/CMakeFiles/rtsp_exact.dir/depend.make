# Empty dependencies file for rtsp_exact.
# This may be replaced when dependencies are built.
