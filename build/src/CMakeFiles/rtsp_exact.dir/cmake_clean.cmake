file(REMOVE_RECURSE
  "CMakeFiles/rtsp_exact.dir/exact/branch_and_bound.cpp.o"
  "CMakeFiles/rtsp_exact.dir/exact/branch_and_bound.cpp.o.d"
  "CMakeFiles/rtsp_exact.dir/exact/knapsack.cpp.o"
  "CMakeFiles/rtsp_exact.dir/exact/knapsack.cpp.o.d"
  "CMakeFiles/rtsp_exact.dir/exact/reduction.cpp.o"
  "CMakeFiles/rtsp_exact.dir/exact/reduction.cpp.o.d"
  "CMakeFiles/rtsp_exact.dir/exact/search_common.cpp.o"
  "CMakeFiles/rtsp_exact.dir/exact/search_common.cpp.o.d"
  "CMakeFiles/rtsp_exact.dir/exact/uniform_cost_search.cpp.o"
  "CMakeFiles/rtsp_exact.dir/exact/uniform_cost_search.cpp.o.d"
  "librtsp_exact.a"
  "librtsp_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
