file(REMOVE_RECURSE
  "librtsp_exact.a"
)
