
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exact/branch_and_bound.cpp" "src/CMakeFiles/rtsp_exact.dir/exact/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/rtsp_exact.dir/exact/branch_and_bound.cpp.o.d"
  "/root/repo/src/exact/knapsack.cpp" "src/CMakeFiles/rtsp_exact.dir/exact/knapsack.cpp.o" "gcc" "src/CMakeFiles/rtsp_exact.dir/exact/knapsack.cpp.o.d"
  "/root/repo/src/exact/reduction.cpp" "src/CMakeFiles/rtsp_exact.dir/exact/reduction.cpp.o" "gcc" "src/CMakeFiles/rtsp_exact.dir/exact/reduction.cpp.o.d"
  "/root/repo/src/exact/search_common.cpp" "src/CMakeFiles/rtsp_exact.dir/exact/search_common.cpp.o" "gcc" "src/CMakeFiles/rtsp_exact.dir/exact/search_common.cpp.o.d"
  "/root/repo/src/exact/uniform_cost_search.cpp" "src/CMakeFiles/rtsp_exact.dir/exact/uniform_cost_search.cpp.o" "gcc" "src/CMakeFiles/rtsp_exact.dir/exact/uniform_cost_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
