file(REMOVE_RECURSE
  "librtsp_workload.a"
)
