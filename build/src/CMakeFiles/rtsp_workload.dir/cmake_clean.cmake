file(REMOVE_RECURSE
  "CMakeFiles/rtsp_workload.dir/workload/balanced_placement.cpp.o"
  "CMakeFiles/rtsp_workload.dir/workload/balanced_placement.cpp.o.d"
  "CMakeFiles/rtsp_workload.dir/workload/drift.cpp.o"
  "CMakeFiles/rtsp_workload.dir/workload/drift.cpp.o.d"
  "CMakeFiles/rtsp_workload.dir/workload/paper_setup.cpp.o"
  "CMakeFiles/rtsp_workload.dir/workload/paper_setup.cpp.o.d"
  "CMakeFiles/rtsp_workload.dir/workload/scenario.cpp.o"
  "CMakeFiles/rtsp_workload.dir/workload/scenario.cpp.o.d"
  "librtsp_workload.a"
  "librtsp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
