# Empty dependencies file for rtsp_workload.
# This may be replaced when dependencies are built.
