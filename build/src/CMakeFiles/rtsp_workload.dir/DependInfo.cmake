
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/balanced_placement.cpp" "src/CMakeFiles/rtsp_workload.dir/workload/balanced_placement.cpp.o" "gcc" "src/CMakeFiles/rtsp_workload.dir/workload/balanced_placement.cpp.o.d"
  "/root/repo/src/workload/drift.cpp" "src/CMakeFiles/rtsp_workload.dir/workload/drift.cpp.o" "gcc" "src/CMakeFiles/rtsp_workload.dir/workload/drift.cpp.o.d"
  "/root/repo/src/workload/paper_setup.cpp" "src/CMakeFiles/rtsp_workload.dir/workload/paper_setup.cpp.o" "gcc" "src/CMakeFiles/rtsp_workload.dir/workload/paper_setup.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/CMakeFiles/rtsp_workload.dir/workload/scenario.cpp.o" "gcc" "src/CMakeFiles/rtsp_workload.dir/workload/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
