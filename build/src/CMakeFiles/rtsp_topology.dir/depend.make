# Empty dependencies file for rtsp_topology.
# This may be replaced when dependencies are built.
