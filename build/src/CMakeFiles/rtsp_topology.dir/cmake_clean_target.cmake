file(REMOVE_RECURSE
  "librtsp_topology.a"
)
