
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/cost_matrix.cpp" "src/CMakeFiles/rtsp_topology.dir/topology/cost_matrix.cpp.o" "gcc" "src/CMakeFiles/rtsp_topology.dir/topology/cost_matrix.cpp.o.d"
  "/root/repo/src/topology/generators.cpp" "src/CMakeFiles/rtsp_topology.dir/topology/generators.cpp.o" "gcc" "src/CMakeFiles/rtsp_topology.dir/topology/generators.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/CMakeFiles/rtsp_topology.dir/topology/graph.cpp.o" "gcc" "src/CMakeFiles/rtsp_topology.dir/topology/graph.cpp.o.d"
  "/root/repo/src/topology/shortest_paths.cpp" "src/CMakeFiles/rtsp_topology.dir/topology/shortest_paths.cpp.o" "gcc" "src/CMakeFiles/rtsp_topology.dir/topology/shortest_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
