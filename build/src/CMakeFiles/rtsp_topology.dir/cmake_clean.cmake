file(REMOVE_RECURSE
  "CMakeFiles/rtsp_topology.dir/topology/cost_matrix.cpp.o"
  "CMakeFiles/rtsp_topology.dir/topology/cost_matrix.cpp.o.d"
  "CMakeFiles/rtsp_topology.dir/topology/generators.cpp.o"
  "CMakeFiles/rtsp_topology.dir/topology/generators.cpp.o.d"
  "CMakeFiles/rtsp_topology.dir/topology/graph.cpp.o"
  "CMakeFiles/rtsp_topology.dir/topology/graph.cpp.o.d"
  "CMakeFiles/rtsp_topology.dir/topology/shortest_paths.cpp.o"
  "CMakeFiles/rtsp_topology.dir/topology/shortest_paths.cpp.o.d"
  "librtsp_topology.a"
  "librtsp_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
