# Empty compiler generated dependencies file for rtsp_core.
# This may be replaced when dependencies are built.
