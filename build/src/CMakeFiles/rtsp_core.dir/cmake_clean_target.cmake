file(REMOVE_RECURSE
  "librtsp_core.a"
)
