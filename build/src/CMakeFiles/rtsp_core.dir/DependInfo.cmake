
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/action.cpp" "src/CMakeFiles/rtsp_core.dir/core/action.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/action.cpp.o.d"
  "/root/repo/src/core/catalog.cpp" "src/CMakeFiles/rtsp_core.dir/core/catalog.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/catalog.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/CMakeFiles/rtsp_core.dir/core/cost_model.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/cost_model.cpp.o.d"
  "/root/repo/src/core/delta.cpp" "src/CMakeFiles/rtsp_core.dir/core/delta.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/delta.cpp.o.d"
  "/root/repo/src/core/feasibility.cpp" "src/CMakeFiles/rtsp_core.dir/core/feasibility.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/feasibility.cpp.o.d"
  "/root/repo/src/core/replication.cpp" "src/CMakeFiles/rtsp_core.dir/core/replication.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/replication.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/rtsp_core.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/schedule_stats.cpp" "src/CMakeFiles/rtsp_core.dir/core/schedule_stats.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/schedule_stats.cpp.o.d"
  "/root/repo/src/core/state.cpp" "src/CMakeFiles/rtsp_core.dir/core/state.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/state.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/rtsp_core.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/system.cpp.o.d"
  "/root/repo/src/core/transfer_graph.cpp" "src/CMakeFiles/rtsp_core.dir/core/transfer_graph.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/transfer_graph.cpp.o.d"
  "/root/repo/src/core/validator.cpp" "src/CMakeFiles/rtsp_core.dir/core/validator.cpp.o" "gcc" "src/CMakeFiles/rtsp_core.dir/core/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
