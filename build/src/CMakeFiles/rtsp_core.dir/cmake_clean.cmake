file(REMOVE_RECURSE
  "CMakeFiles/rtsp_core.dir/core/action.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/action.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/catalog.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/catalog.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/cost_model.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/cost_model.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/delta.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/delta.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/feasibility.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/feasibility.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/replication.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/replication.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/schedule.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/schedule.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/schedule_stats.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/schedule_stats.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/state.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/state.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/system.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/system.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/transfer_graph.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/transfer_graph.cpp.o.d"
  "CMakeFiles/rtsp_core.dir/core/validator.cpp.o"
  "CMakeFiles/rtsp_core.dir/core/validator.cpp.o.d"
  "librtsp_core.a"
  "librtsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
