# Empty compiler generated dependencies file for rtsp_cli.
# This may be replaced when dependencies are built.
