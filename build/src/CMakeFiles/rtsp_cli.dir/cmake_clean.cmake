file(REMOVE_RECURSE
  "CMakeFiles/rtsp_cli.dir/cli/commands.cpp.o"
  "CMakeFiles/rtsp_cli.dir/cli/commands.cpp.o.d"
  "librtsp_cli.a"
  "librtsp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
