file(REMOVE_RECURSE
  "librtsp_cli.a"
)
