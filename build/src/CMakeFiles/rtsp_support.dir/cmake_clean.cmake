file(REMOVE_RECURSE
  "CMakeFiles/rtsp_support.dir/support/cli.cpp.o"
  "CMakeFiles/rtsp_support.dir/support/cli.cpp.o.d"
  "CMakeFiles/rtsp_support.dir/support/csv.cpp.o"
  "CMakeFiles/rtsp_support.dir/support/csv.cpp.o.d"
  "CMakeFiles/rtsp_support.dir/support/histogram.cpp.o"
  "CMakeFiles/rtsp_support.dir/support/histogram.cpp.o.d"
  "CMakeFiles/rtsp_support.dir/support/rng.cpp.o"
  "CMakeFiles/rtsp_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/rtsp_support.dir/support/stats.cpp.o"
  "CMakeFiles/rtsp_support.dir/support/stats.cpp.o.d"
  "CMakeFiles/rtsp_support.dir/support/string_util.cpp.o"
  "CMakeFiles/rtsp_support.dir/support/string_util.cpp.o.d"
  "CMakeFiles/rtsp_support.dir/support/table.cpp.o"
  "CMakeFiles/rtsp_support.dir/support/table.cpp.o.d"
  "CMakeFiles/rtsp_support.dir/support/thread_pool.cpp.o"
  "CMakeFiles/rtsp_support.dir/support/thread_pool.cpp.o.d"
  "librtsp_support.a"
  "librtsp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
