# Empty compiler generated dependencies file for rtsp_support.
# This may be replaced when dependencies are built.
