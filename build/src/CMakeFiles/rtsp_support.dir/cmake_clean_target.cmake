file(REMOVE_RECURSE
  "librtsp_support.a"
)
