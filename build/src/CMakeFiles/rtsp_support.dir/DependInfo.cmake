
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/rtsp_support.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/rtsp_support.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/CMakeFiles/rtsp_support.dir/support/csv.cpp.o" "gcc" "src/CMakeFiles/rtsp_support.dir/support/csv.cpp.o.d"
  "/root/repo/src/support/histogram.cpp" "src/CMakeFiles/rtsp_support.dir/support/histogram.cpp.o" "gcc" "src/CMakeFiles/rtsp_support.dir/support/histogram.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/rtsp_support.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/rtsp_support.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/rtsp_support.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/rtsp_support.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/string_util.cpp" "src/CMakeFiles/rtsp_support.dir/support/string_util.cpp.o" "gcc" "src/CMakeFiles/rtsp_support.dir/support/string_util.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/rtsp_support.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/rtsp_support.dir/support/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/CMakeFiles/rtsp_support.dir/support/thread_pool.cpp.o" "gcc" "src/CMakeFiles/rtsp_support.dir/support/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
