# Empty dependencies file for rtsp_extension.
# This may be replaced when dependencies are built.
