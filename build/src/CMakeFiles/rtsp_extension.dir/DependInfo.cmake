
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extension/deadline.cpp" "src/CMakeFiles/rtsp_extension.dir/extension/deadline.cpp.o" "gcc" "src/CMakeFiles/rtsp_extension.dir/extension/deadline.cpp.o.d"
  "/root/repo/src/extension/dependency_graph.cpp" "src/CMakeFiles/rtsp_extension.dir/extension/dependency_graph.cpp.o" "gcc" "src/CMakeFiles/rtsp_extension.dir/extension/dependency_graph.cpp.o.d"
  "/root/repo/src/extension/makespan.cpp" "src/CMakeFiles/rtsp_extension.dir/extension/makespan.cpp.o" "gcc" "src/CMakeFiles/rtsp_extension.dir/extension/makespan.cpp.o.d"
  "/root/repo/src/extension/phases.cpp" "src/CMakeFiles/rtsp_extension.dir/extension/phases.cpp.o" "gcc" "src/CMakeFiles/rtsp_extension.dir/extension/phases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtsp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
