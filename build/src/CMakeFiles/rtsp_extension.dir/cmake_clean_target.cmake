file(REMOVE_RECURSE
  "librtsp_extension.a"
)
