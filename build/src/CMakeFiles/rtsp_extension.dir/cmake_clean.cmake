file(REMOVE_RECURSE
  "CMakeFiles/rtsp_extension.dir/extension/deadline.cpp.o"
  "CMakeFiles/rtsp_extension.dir/extension/deadline.cpp.o.d"
  "CMakeFiles/rtsp_extension.dir/extension/dependency_graph.cpp.o"
  "CMakeFiles/rtsp_extension.dir/extension/dependency_graph.cpp.o.d"
  "CMakeFiles/rtsp_extension.dir/extension/makespan.cpp.o"
  "CMakeFiles/rtsp_extension.dir/extension/makespan.cpp.o.d"
  "CMakeFiles/rtsp_extension.dir/extension/phases.cpp.o"
  "CMakeFiles/rtsp_extension.dir/extension/phases.cpp.o.d"
  "librtsp_extension.a"
  "librtsp_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsp_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
