file(REMOVE_RECURSE
  "CMakeFiles/fig7_cost_vs_replicas_unisize.dir/fig7_cost_vs_replicas_unisize.cpp.o"
  "CMakeFiles/fig7_cost_vs_replicas_unisize.dir/fig7_cost_vs_replicas_unisize.cpp.o.d"
  "fig7_cost_vs_replicas_unisize"
  "fig7_cost_vs_replicas_unisize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cost_vs_replicas_unisize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
