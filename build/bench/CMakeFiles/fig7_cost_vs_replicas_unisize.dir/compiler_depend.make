# Empty compiler generated dependencies file for fig7_cost_vs_replicas_unisize.
# This may be replaced when dependencies are built.
