# Empty dependencies file for ablation_h1_resource.
# This may be replaced when dependencies are built.
