file(REMOVE_RECURSE
  "CMakeFiles/ablation_h1_resource.dir/ablation_h1_resource.cpp.o"
  "CMakeFiles/ablation_h1_resource.dir/ablation_h1_resource.cpp.o.d"
  "ablation_h1_resource"
  "ablation_h1_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_h1_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
