# Empty dependencies file for fig8_dummy_vs_capacity.
# This may be replaced when dependencies are built.
