file(REMOVE_RECURSE
  "CMakeFiles/fig8_dummy_vs_capacity.dir/fig8_dummy_vs_capacity.cpp.o"
  "CMakeFiles/fig8_dummy_vs_capacity.dir/fig8_dummy_vs_capacity.cpp.o.d"
  "fig8_dummy_vs_capacity"
  "fig8_dummy_vs_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dummy_vs_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
