# Empty compiler generated dependencies file for baseline_sa.
# This may be replaced when dependencies are built.
