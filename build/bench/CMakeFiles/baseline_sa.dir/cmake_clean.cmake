file(REMOVE_RECURSE
  "CMakeFiles/baseline_sa.dir/baseline_sa.cpp.o"
  "CMakeFiles/baseline_sa.dir/baseline_sa.cpp.o.d"
  "baseline_sa"
  "baseline_sa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
