# Empty compiler generated dependencies file for ext_deadline.
# This may be replaced when dependencies are built.
