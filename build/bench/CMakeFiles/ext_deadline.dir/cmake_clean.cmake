file(REMOVE_RECURSE
  "CMakeFiles/ext_deadline.dir/ext_deadline.cpp.o"
  "CMakeFiles/ext_deadline.dir/ext_deadline.cpp.o.d"
  "ext_deadline"
  "ext_deadline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
