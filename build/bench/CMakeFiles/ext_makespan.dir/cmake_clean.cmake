file(REMOVE_RECURSE
  "CMakeFiles/ext_makespan.dir/ext_makespan.cpp.o"
  "CMakeFiles/ext_makespan.dir/ext_makespan.cpp.o.d"
  "ext_makespan"
  "ext_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
