# Empty dependencies file for ext_makespan.
# This may be replaced when dependencies are built.
