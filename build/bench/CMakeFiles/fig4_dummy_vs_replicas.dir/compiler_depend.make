# Empty compiler generated dependencies file for fig4_dummy_vs_replicas.
# This may be replaced when dependencies are built.
