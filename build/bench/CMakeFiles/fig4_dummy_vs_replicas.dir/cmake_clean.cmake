file(REMOVE_RECURSE
  "CMakeFiles/fig4_dummy_vs_replicas.dir/fig4_dummy_vs_replicas.cpp.o"
  "CMakeFiles/fig4_dummy_vs_replicas.dir/fig4_dummy_vs_replicas.cpp.o.d"
  "fig4_dummy_vs_replicas"
  "fig4_dummy_vs_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dummy_vs_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
