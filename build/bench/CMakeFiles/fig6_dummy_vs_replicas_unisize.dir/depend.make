# Empty dependencies file for fig6_dummy_vs_replicas_unisize.
# This may be replaced when dependencies are built.
