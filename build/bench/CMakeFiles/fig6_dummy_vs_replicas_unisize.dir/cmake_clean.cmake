file(REMOVE_RECURSE
  "CMakeFiles/fig6_dummy_vs_replicas_unisize.dir/fig6_dummy_vs_replicas_unisize.cpp.o"
  "CMakeFiles/fig6_dummy_vs_replicas_unisize.dir/fig6_dummy_vs_replicas_unisize.cpp.o.d"
  "fig6_dummy_vs_replicas_unisize"
  "fig6_dummy_vs_replicas_unisize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dummy_vs_replicas_unisize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
