file(REMOVE_RECURSE
  "CMakeFiles/ablation_op1_restart.dir/ablation_op1_restart.cpp.o"
  "CMakeFiles/ablation_op1_restart.dir/ablation_op1_restart.cpp.o.d"
  "ablation_op1_restart"
  "ablation_op1_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_op1_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
