# Empty compiler generated dependencies file for ablation_op1_restart.
# This may be replaced when dependencies are built.
