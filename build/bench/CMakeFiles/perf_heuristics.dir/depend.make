# Empty dependencies file for perf_heuristics.
# This may be replaced when dependencies are built.
