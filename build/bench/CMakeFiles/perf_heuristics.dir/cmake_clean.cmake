file(REMOVE_RECURSE
  "CMakeFiles/perf_heuristics.dir/perf_heuristics.cpp.o"
  "CMakeFiles/perf_heuristics.dir/perf_heuristics.cpp.o.d"
  "perf_heuristics"
  "perf_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
