# Empty compiler generated dependencies file for fig9_cost_vs_capacity.
# This may be replaced when dependencies are built.
