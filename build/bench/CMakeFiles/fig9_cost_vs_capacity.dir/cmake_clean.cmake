file(REMOVE_RECURSE
  "CMakeFiles/fig9_cost_vs_capacity.dir/fig9_cost_vs_capacity.cpp.o"
  "CMakeFiles/fig9_cost_vs_capacity.dir/fig9_cost_vs_capacity.cpp.o.d"
  "fig9_cost_vs_capacity"
  "fig9_cost_vs_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cost_vs_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
