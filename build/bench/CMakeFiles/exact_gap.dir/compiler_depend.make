# Empty compiler generated dependencies file for exact_gap.
# This may be replaced when dependencies are built.
