file(REMOVE_RECURSE
  "CMakeFiles/exact_gap.dir/exact_gap.cpp.o"
  "CMakeFiles/exact_gap.dir/exact_gap.cpp.o.d"
  "exact_gap"
  "exact_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
