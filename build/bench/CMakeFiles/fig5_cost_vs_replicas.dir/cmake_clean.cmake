file(REMOVE_RECURSE
  "CMakeFiles/fig5_cost_vs_replicas.dir/fig5_cost_vs_replicas.cpp.o"
  "CMakeFiles/fig5_cost_vs_replicas.dir/fig5_cost_vs_replicas.cpp.o.d"
  "fig5_cost_vs_replicas"
  "fig5_cost_vs_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cost_vs_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
