# Empty compiler generated dependencies file for fig5_cost_vs_replicas.
# This may be replaced when dependencies are built.
