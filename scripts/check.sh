#!/usr/bin/env sh
# Tier-1 verification: configure, build, run the test suite, then prove the
# tree still builds and passes with the obs instrumentation (metrics, trace,
# provenance) compiled out via the obs_off_smoke target.
#
# Usage: scripts/check.sh [BUILD_DIR]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# RTSP_OBS=OFF must still build (provenance hooks fold away) and pass tests.
cmake --build "$BUILD_DIR" -t obs_off_smoke

echo "check.sh: all green"
