#!/usr/bin/env sh
# Tier-1 verification: configure, build, run the test suite, then prove the
# tree still builds and passes with the obs instrumentation (metrics, trace,
# provenance) compiled out via the obs_off_smoke target. Finishes with the
# scale_smoke guard (M=500, N=100k generate -> binary round-trip -> serial
# vs sharded solve -> validate under a time budget) and an obs smoke: a
# small faulted `rtsp execute` with the flight recorder armed, `rtsp
# report`, and obs_lint over the journal + series files.
#
# Usage: scripts/check.sh [--quick | --sanitize | --bench] [BUILD_DIR]
#                                                          (default: build)
#
# --quick is the inner-loop mode: configure, build, and run only the tests
# labelled `unit` (ctest -L unit) — fast and deterministic, skipping the
# property/cli/slow tiers and the smoke guards.
#
# --sanitize runs the same configure/build/test cycle in a separate build
# directory (<BUILD_DIR>_asan) with RTSP_SANITIZE=ON (ASan + UBSan,
# no-recover), instead of the regular cycle; scale_smoke runs there too with
# a roomier budget.
#
# --bench rebuilds perf_heuristics + bench_compare, reruns the benchmarks and
# compares against the committed BENCH_perf_heuristics.json baseline, failing
# (exit 2) on regressions past the bench_compare threshold.
set -eu

cd "$(dirname "$0")/.."

MODE=check
if [ "${1:-}" = "--sanitize" ]; then
  MODE=sanitize
  shift
elif [ "${1:-}" = "--bench" ]; then
  MODE=bench
  shift
elif [ "${1:-}" = "--quick" ]; then
  MODE=quick
  shift
fi
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Flight-recorder smoke: faulted execute with journal/series/timeline
# recording on, report over the artifacts, then schema-lint them (plus the
# structured log and an in-process HTTP scrape of the introspect endpoints —
# no curl needed). $1 is the build dir whose rtsp/obs_lint to use.
obs_smoke() {
  SMOKE_DIR="$1/obs_smoke"
  RTSP="$1/tools/rtsp"
  rm -rf "$SMOKE_DIR"
  mkdir -p "$SMOKE_DIR"
  "$RTSP" generate --kind random --servers 10 --objects 60 --seed 7 \
    --out "$SMOKE_DIR/inst.txt" > /dev/null
  "$RTSP" solve --instance "$SMOKE_DIR/inst.txt" --algo GOLCF+H1+H2+OP1 \
    --seed 1 --out "$SMOKE_DIR/plan.txt" \
    --log-out "$SMOKE_DIR/run.log.jsonl" --log-level debug > /dev/null
  cat > "$SMOKE_DIR/faults.json" <<'EOF'
{"version": 1, "seed": 42, "transient_failure_rate": 0.15,
 "offline": [{"server": 2, "begin": 0, "end": 900}],
 "losses": [{"server": 0, "object": 1, "at": 50}, {"server": 3, "object": 7, "at": 200}]}
EOF
  "$RTSP" execute --instance "$SMOKE_DIR/inst.txt" \
    --schedule "$SMOKE_DIR/plan.txt" --faults "$SMOKE_DIR/faults.json" \
    --seed 9 --journal-out "$SMOKE_DIR/run.journal" \
    --timeline-out "$SMOKE_DIR/run.trace.json" \
    --series-out "$SMOKE_DIR/run.series.jsonl" --sample-ms 10 > /dev/null
  "$RTSP" report --journal "$SMOKE_DIR/run.journal" \
    --series "$SMOKE_DIR/run.series.jsonl" \
    --html "$SMOKE_DIR/report.html" --out "$SMOKE_DIR/report.json" > /dev/null
  "$1"/tools/obs_lint --journal "$SMOKE_DIR/run.journal" \
    --series "$SMOKE_DIR/run.series.jsonl" \
    --log "$SMOKE_DIR/run.log.jsonl" --scrape-smoke
}

if [ "$MODE" = "sanitize" ]; then
  SAN_DIR="${BUILD_DIR}_asan"
  cmake -B "$SAN_DIR" -S . -DRTSP_SANITIZE=ON
  cmake --build "$SAN_DIR" -j "$JOBS"
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS"
  "$SAN_DIR"/tools/scale_smoke 600
  obs_smoke "$SAN_DIR"
  echo "check.sh: sanitizer build green"
  exit 0
fi

if [ "$MODE" = "quick" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L unit
  echo "check.sh: quick (unit) green"
  exit 0
fi

if [ "$MODE" = "bench" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS" -t perf_heuristics bench_compare
  FRESH="$BUILD_DIR/bench_fresh.json"
  "$BUILD_DIR"/bench/perf_heuristics --json "$FRESH"
  # 10% threshold: the sub-millisecond builder benches jitter ~5-8% run to
  # run on shared hardware; real regressions from code changes clear 10%.
  "$BUILD_DIR"/tools/bench_compare BENCH_perf_heuristics.json "$FRESH" --fail --threshold 10
  echo "check.sh: bench comparison green"
  exit 0
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# RTSP_OBS=OFF must still build (provenance hooks fold away) and pass tests.
cmake --build "$BUILD_DIR" -t obs_off_smoke

# The scale tier must stay solvable within budget.
"$BUILD_DIR"/tools/scale_smoke 120

# The flight recorder's artifacts must stay schema-valid end to end.
obs_smoke "$BUILD_DIR"

echo "check.sh: all green"
