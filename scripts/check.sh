#!/usr/bin/env sh
# Tier-1 verification: configure, build, run the test suite, then prove the
# tree still builds and passes with the obs instrumentation (metrics, trace,
# provenance) compiled out via the obs_off_smoke target. Finishes with the
# scale_smoke guard (M=500, N=100k generate -> binary round-trip -> serial
# vs sharded solve -> validate under a time budget) and an obs smoke: a
# small faulted `rtsp execute` with the flight recorder armed, `rtsp
# report`, and obs_lint over the journal + series files.
#
# Usage: scripts/check.sh [--quick | --sanitize | --bench | --daemon-smoke]
#                          [BUILD_DIR]                     (default: build)
#
# --quick is the inner-loop mode: configure, build, and run only the tests
# labelled `unit` (ctest -L unit) — fast and deterministic, skipping the
# property/cli/slow tiers and the smoke guards.
#
# --sanitize runs the same configure/build/test cycle in a separate build
# directory (<BUILD_DIR>_asan) with RTSP_SANITIZE=ON (ASan + UBSan,
# no-recover), instead of the regular cycle; scale_smoke runs there too with
# a roomier budget.
#
# --bench rebuilds perf_heuristics + bench_compare, reruns the benchmarks and
# compares against the committed BENCH_perf_heuristics.json baseline, failing
# (exit 2) on regressions past the bench_compare threshold.
#
# --daemon-smoke rebuilds rtsp + obs_lint + daemon_chaos and runs only the
# daemon crash/recover smoke (also part of the default and sanitize cycles):
# serve in the background, feed epochs over HTTP, SIGKILL it, recover from
# the checkpoint + WAL, drain gracefully (exit 3), lint the durable state,
# compare the final placement against the expected stream tail, and finish
# with a deterministic daemon_chaos sweep.
set -eu

cd "$(dirname "$0")/.."

MODE=check
if [ "${1:-}" = "--sanitize" ]; then
  MODE=sanitize
  shift
elif [ "${1:-}" = "--bench" ]; then
  MODE=bench
  shift
elif [ "${1:-}" = "--quick" ]; then
  MODE=quick
  shift
elif [ "${1:-}" = "--daemon-smoke" ]; then
  MODE=daemon
  shift
fi
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Flight-recorder smoke: faulted execute with journal/series/timeline
# recording on, report over the artifacts, then schema-lint them (plus the
# structured log and an in-process HTTP scrape of the introspect endpoints —
# no curl needed). $1 is the build dir whose rtsp/obs_lint to use.
obs_smoke() {
  SMOKE_DIR="$1/obs_smoke"
  RTSP="$1/tools/rtsp"
  rm -rf "$SMOKE_DIR"
  mkdir -p "$SMOKE_DIR"
  "$RTSP" generate --kind random --servers 10 --objects 60 --seed 7 \
    --out "$SMOKE_DIR/inst.txt" > /dev/null
  "$RTSP" solve --instance "$SMOKE_DIR/inst.txt" --algo GOLCF+H1+H2+OP1 \
    --seed 1 --out "$SMOKE_DIR/plan.txt" \
    --log-out "$SMOKE_DIR/run.log.jsonl" --log-level debug > /dev/null
  cat > "$SMOKE_DIR/faults.json" <<'EOF'
{"version": 1, "seed": 42, "transient_failure_rate": 0.15,
 "offline": [{"server": 2, "begin": 0, "end": 900}],
 "losses": [{"server": 0, "object": 1, "at": 50}, {"server": 3, "object": 7, "at": 200}]}
EOF
  "$RTSP" execute --instance "$SMOKE_DIR/inst.txt" \
    --schedule "$SMOKE_DIR/plan.txt" --faults "$SMOKE_DIR/faults.json" \
    --seed 9 --journal-out "$SMOKE_DIR/run.journal" \
    --timeline-out "$SMOKE_DIR/run.trace.json" \
    --series-out "$SMOKE_DIR/run.series.jsonl" --sample-ms 10 > /dev/null
  "$RTSP" report --journal "$SMOKE_DIR/run.journal" \
    --series "$SMOKE_DIR/run.series.jsonl" \
    --html "$SMOKE_DIR/report.html" --out "$SMOKE_DIR/report.json" > /dev/null
  "$1"/tools/obs_lint --journal "$SMOKE_DIR/run.journal" \
    --series "$SMOKE_DIR/run.series.jsonl" \
    --log "$SMOKE_DIR/run.log.jsonl" --scrape-smoke
}

# Daemon crash/recover smoke: a real kill -9 against a live `rtsp serve`,
# then recovery from the durable state it left behind. $1 is the build dir
# whose rtsp/obs_lint/daemon_chaos to use. Exercises the full loop the unit
# tests cover in-process: HTTP admission, SIGKILL, --recover, /drain with
# the distinct exit code, state linting, and the expected final placement.
daemon_smoke() {
  DSMOKE="$1/daemon_smoke"
  RTSP="$1/tools/rtsp"
  rm -rf "$DSMOKE"
  mkdir -p "$DSMOKE"
  "$RTSP" generate --kind random --servers 8 --objects 40 --seed 11 \
    --out "$DSMOKE/inst.txt" > /dev/null
  "$RTSP" epochs --instance "$DSMOKE/inst.txt" --count 3 --moves 6 --seed 5 \
    --out "$DSMOKE/epochs.jsonl" --final-out "$DSMOKE/expect.place" > /dev/null

  # Phase 1: serve on a kernel-picked port, feed the stream over HTTP, then
  # SIGKILL the daemon so only fsync-ordered checkpoint/WAL state survives.
  "$RTSP" serve --instance "$DSMOKE/inst.txt" --state-dir "$DSMOKE/state" \
    --listen 0 --port-file "$DSMOKE/port" --seed 5 --epoch-budget 40 \
    --checkpoint-every 2 > "$DSMOKE/serve1.log" 2>&1 &
  SERVE_PID=$!
  i=0
  while [ ! -s "$DSMOKE/port" ] && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.05
  done
  if [ ! -s "$DSMOKE/port" ]; then
    echo "daemon_smoke: serve never published its port" >&2
    kill -9 "$SERVE_PID" 2> /dev/null || true
    return 1
  fi
  "$RTSP" submit --port-file "$DSMOKE/port" --epochs "$DSMOKE/epochs.jsonl" \
    > /dev/null
  kill -9 "$SERVE_PID" 2> /dev/null || true
  wait "$SERVE_PID" 2> /dev/null || true

  # Phase 2: recover from the surviving state, let it converge, then drain.
  "$RTSP" serve --instance "$DSMOKE/inst.txt" --state-dir "$DSMOKE/state" \
    --recover --listen 0 --port-file "$DSMOKE/port2" --seed 5 \
    --epoch-budget 40 --checkpoint-every 2 \
    --final-out "$DSMOKE/final.place" > "$DSMOKE/serve2.log" 2>&1 &
  SERVE_PID=$!
  i=0
  while [ ! -s "$DSMOKE/port2" ] && [ "$i" -lt 100 ]; do
    i=$((i + 1)); sleep 0.05
  done
  if [ ! -s "$DSMOKE/port2" ]; then
    echo "daemon_smoke: recovered serve never published its port" >&2
    cat "$DSMOKE/serve2.log" >&2
    kill -9 "$SERVE_PID" 2> /dev/null || true
    return 1
  fi
  grep -q "recovered: generation" "$DSMOKE/serve2.log" || {
    echo "daemon_smoke: no recovery banner in serve2.log" >&2
    kill -9 "$SERVE_PID" 2> /dev/null || true
    return 1
  }
  i=0
  while [ "$i" -lt 200 ]; do
    if "$RTSP" submit --port-file "$DSMOKE/port2" --status 2> /dev/null \
        | grep -q '"idle":true'; then
      break
    fi
    i=$((i + 1)); sleep 0.05
  done
  "$RTSP" submit --port-file "$DSMOKE/port2" --drain > /dev/null
  set +e
  wait "$SERVE_PID"
  SERVE_CODE=$?
  set -e
  if [ "$SERVE_CODE" -ne 3 ]; then
    echo "daemon_smoke: drained serve exited $SERVE_CODE, want 3" >&2
    cat "$DSMOKE/serve2.log" >&2
    return 1
  fi

  # The durable state must lint (generation-consistent checkpoint + WAL)
  # and the daemon must have landed exactly on the stream's final target.
  "$1"/tools/obs_lint --checkpoint "$DSMOKE/state/checkpoint" \
    --wal "$DSMOKE/state/wal.log"
  cmp "$DSMOKE/final.place" "$DSMOKE/expect.place"

  # Deterministic kill/recover sweep: recovered runs must be bit-identical
  # to uninterrupted ones across randomized crash points and torn tails.
  "$1"/tools/daemon_chaos --seeds 4 --crashes 3
}

if [ "$MODE" = "daemon" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS" -t rtsp_tool obs_lint daemon_chaos
  daemon_smoke "$BUILD_DIR"
  echo "check.sh: daemon smoke green"
  exit 0
fi

if [ "$MODE" = "sanitize" ]; then
  SAN_DIR="${BUILD_DIR}_asan"
  cmake -B "$SAN_DIR" -S . -DRTSP_SANITIZE=ON
  cmake --build "$SAN_DIR" -j "$JOBS"
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS"
  "$SAN_DIR"/tools/scale_smoke 600
  obs_smoke "$SAN_DIR"
  daemon_smoke "$SAN_DIR"
  echo "check.sh: sanitizer build green"
  exit 0
fi

if [ "$MODE" = "quick" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L unit
  echo "check.sh: quick (unit) green"
  exit 0
fi

if [ "$MODE" = "bench" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS" -t perf_heuristics bench_compare
  FRESH="$BUILD_DIR/bench_fresh.json"
  "$BUILD_DIR"/bench/perf_heuristics --json "$FRESH"
  # 10% threshold: the sub-millisecond builder benches jitter ~5-8% run to
  # run on shared hardware; real regressions from code changes clear 10%.
  "$BUILD_DIR"/tools/bench_compare BENCH_perf_heuristics.json "$FRESH" --fail --threshold 10
  echo "check.sh: bench comparison green"
  exit 0
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# RTSP_OBS=OFF must still build (provenance hooks fold away) and pass tests.
cmake --build "$BUILD_DIR" -t obs_off_smoke

# The scale tier must stay solvable within budget.
"$BUILD_DIR"/tools/scale_smoke 120

# The flight recorder's artifacts must stay schema-valid end to end.
obs_smoke "$BUILD_DIR"

# The daemon must survive kill -9 and recover bit-identically.
daemon_smoke "$BUILD_DIR"

echo "check.sh: all green"
