#!/usr/bin/env sh
# Tier-1 verification: configure, build, run the test suite, then prove the
# tree still builds and passes with the obs instrumentation (metrics, trace,
# provenance) compiled out via the obs_off_smoke target.
#
# Usage: scripts/check.sh [--sanitize] [BUILD_DIR]   (default: build)
#
# --sanitize runs the same configure/build/test cycle in a separate build
# directory (<BUILD_DIR>_asan) with RTSP_SANITIZE=ON (ASan + UBSan,
# no-recover), instead of the regular cycle.
set -eu

cd "$(dirname "$0")/.."

SANITIZE=0
if [ "${1:-}" = "--sanitize" ]; then
  SANITIZE=1
  shift
fi
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [ "$SANITIZE" = "1" ]; then
  SAN_DIR="${BUILD_DIR}_asan"
  cmake -B "$SAN_DIR" -S . -DRTSP_SANITIZE=ON
  cmake --build "$SAN_DIR" -j "$JOBS"
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS"
  echo "check.sh: sanitizer build green"
  exit 0
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# RTSP_OBS=OFF must still build (provenance hooks fold away) and pass tests.
cmake --build "$BUILD_DIR" -t obs_off_smoke

echo "check.sh: all green"
