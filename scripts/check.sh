#!/usr/bin/env sh
# Tier-1 verification: configure, build, run the test suite, then prove the
# tree still builds and passes with the obs instrumentation (metrics, trace,
# provenance) compiled out via the obs_off_smoke target. Finishes with the
# scale_smoke guard (M=500, N=100k generate -> binary round-trip -> serial
# vs sharded solve -> validate under a time budget).
#
# Usage: scripts/check.sh [--sanitize | --bench] [BUILD_DIR]   (default: build)
#
# --sanitize runs the same configure/build/test cycle in a separate build
# directory (<BUILD_DIR>_asan) with RTSP_SANITIZE=ON (ASan + UBSan,
# no-recover), instead of the regular cycle; scale_smoke runs there too with
# a roomier budget.
#
# --bench rebuilds perf_heuristics + bench_compare, reruns the benchmarks and
# compares against the committed BENCH_perf_heuristics.json baseline, failing
# (exit 2) on regressions past the bench_compare threshold.
set -eu

cd "$(dirname "$0")/.."

MODE=check
if [ "${1:-}" = "--sanitize" ]; then
  MODE=sanitize
  shift
elif [ "${1:-}" = "--bench" ]; then
  MODE=bench
  shift
fi
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [ "$MODE" = "sanitize" ]; then
  SAN_DIR="${BUILD_DIR}_asan"
  cmake -B "$SAN_DIR" -S . -DRTSP_SANITIZE=ON
  cmake --build "$SAN_DIR" -j "$JOBS"
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS"
  "$SAN_DIR"/tools/scale_smoke 600
  echo "check.sh: sanitizer build green"
  exit 0
fi

if [ "$MODE" = "bench" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS" -t perf_heuristics bench_compare
  FRESH="$BUILD_DIR/bench_fresh.json"
  "$BUILD_DIR"/bench/perf_heuristics --json "$FRESH"
  # 10% threshold: the sub-millisecond builder benches jitter ~5-8% run to
  # run on shared hardware; real regressions from code changes clear 10%.
  "$BUILD_DIR"/tools/bench_compare BENCH_perf_heuristics.json "$FRESH" --fail --threshold 10
  echo "check.sh: bench comparison green"
  exit 0
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# RTSP_OBS=OFF must still build (provenance hooks fold away) and pass tests.
cmake --build "$BUILD_DIR" -t obs_off_smoke

# The scale tier must stay solvable within budget.
"$BUILD_DIR"/tools/scale_smoke 120

echo "check.sh: all green"
